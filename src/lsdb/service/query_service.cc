#include "lsdb/service/query_service.h"

#include <algorithm>
#include <chrono>

#include "lsdb/build/bulk_loader.h"
#include "lsdb/geom/morton.h"
#include "lsdb/query/incident.h"
#include "lsdb/snapshot/snapshot_writer.h"
#include "lsdb/util/mutex.h"

namespace lsdb {

const char* ServedIndexName(ServedIndex s) {
  switch (s) {
    case ServedIndex::kRStar:
      return "R*";
    case ServedIndex::kRPlus:
      return "R+";
    case ServedIndex::kPmr:
      return "PMR";
  }
  return "?";
}

const char* QueryTypeName(QueryType t) {
  switch (t) {
    case QueryType::kPoint:
      return "point";
    case QueryType::kWindow:
      return "window";
    case QueryType::kNearest:
      return "nearest";
    case QueryType::kIncident:
      return "incident";
  }
  return "?";
}

bool SameResponse(const QueryResponse& a, const QueryResponse& b) {
  if (a.status.code() != b.status.code()) return false;
  if (a.hits.size() != b.hits.size()) return false;
  for (size_t i = 0; i < a.hits.size(); ++i) {
    if (a.hits[i].id != b.hits[i].id || !(a.hits[i].seg == b.hits[i].seg)) {
      return false;
    }
  }
  return a.nearest.id == b.nearest.id &&
         a.nearest.squared_distance == b.nearest.squared_distance &&
         a.nearest.seg == b.nearest.seg;
}

bool SameResponses(const BatchResult& a, const BatchResult& b) {
  if (a.responses.size() != b.responses.size()) return false;
  for (size_t i = 0; i < a.responses.size(); ++i) {
    if (!SameResponse(a.responses[i], b.responses[i])) return false;
  }
  return true;
}

QueryService::QueryService(const ServiceOptions& options)
    : options_(options) {}

QueryService::~QueryService() {
  // Shutdown order matters: close the admission queue first (future
  // Offers shed with kShutdown), complete every drained ticket, then
  // destroy the worker pool. The pool's destructor drains already-queued
  // dispatch tasks — they find the queue empty and no-op — so no ticket
  // is ever silently dropped and no dispatch task outlives admission_.
  if (admission_ != nullptr) {
    std::vector<AdmissionQueue::Ticket> drained;
    admission_->Close(&drained);
    for (AdmissionQueue::Ticket& t : drained) {
      admission_->OnFinished(t.request.type);
      QueryResponse r;
      r.status = Status::Cancelled("query service shutting down");
      if (t.done) t.done(std::move(r));
    }
  }
  workers_.reset();
}

StatusOr<std::unique_ptr<QueryService>> QueryService::Build(
    const PolygonalMap& map, const ServiceOptions& options) {
  std::unique_ptr<QueryService> svc(new QueryService(options));
  LSDB_RETURN_IF_ERROR(svc->BuildIndexes(map));
  svc->workers_ = std::make_unique<WorkerPool>(options.num_threads);
  LSDB_RETURN_IF_ERROR(svc->SetUpObservability());
  return svc;
}

StatusOr<std::unique_ptr<QueryService>> QueryService::OpenFromSnapshot(
    const std::string& path, const ServiceOptions& options, bool zero_copy) {
  LSDB_ASSIGN_OR_RETURN(std::unique_ptr<snapshot::SnapshotReader> reader,
                        snapshot::SnapshotReader::Open(path));
  // The snapshot header is authoritative for the structure parameters: the
  // superblocks were written with them, and each index's Open() re-checks
  // its options against its superblock.
  ServiceOptions opts = options;
  const snapshot::Header& h = reader->header();
  opts.index.page_size = h.page_size;
  opts.index.world_log2 = h.world_log2;
  opts.index.pmr_split_threshold = h.pmr_split_threshold;
  opts.index.pmr_max_depth = h.pmr_max_depth;
  opts.index.pmr_store_bboxes = h.pmr_store_bboxes;
  std::unique_ptr<QueryService> svc(new QueryService(opts));
  svc->snapshot_ = std::move(reader);
  svc->snapshot_zero_copy_ = zero_copy;
  LSDB_RETURN_IF_ERROR(svc->OpenIndexesFromSnapshot(zero_copy));
  svc->workers_ = std::make_unique<WorkerPool>(opts.num_threads);
  LSDB_RETURN_IF_ERROR(svc->SetUpObservability());
  svc->stats_.GetCounter("lsdb_snapshot_opens_total")->Add(1);
  return svc;
}

Status QueryService::WriteSnapshot(const std::string& path) {
  // Writable backends may hold dirty pages in the pools and stale
  // superblocks; flush so the backend files are byte-complete. Read-only
  // backends (a service itself opened from a snapshot) are durable by
  // definition and would reject the writes.
  if (!seg_file_->read_only()) {
    LSDB_RETURN_IF_ERROR(segs_->Flush());
    LSDB_RETURN_IF_ERROR(rstar_->Flush());
    LSDB_RETURN_IF_ERROR(rplus_->Flush());
    LSDB_RETURN_IF_ERROR(pmr_->Flush());
  }
  snapshot::SnapshotParams params;
  params.page_size = options_.index.page_size;
  params.world_log2 = options_.index.world_log2;
  params.pmr_split_threshold = options_.index.pmr_split_threshold;
  params.pmr_max_depth = options_.index.pmr_max_depth;
  params.pmr_store_bboxes = options_.index.pmr_store_bboxes;
  params.segment_count = segs_->size();
  // Stream from the raw backends, below the injectors, so an armed fault
  // plan cannot perturb the serialized bytes.
  return snapshot::WriteSnapshot(path, params, seg_file_.get(),
                                 rstar_file_.get(), rplus_file_.get(),
                                 pmr_file_.get());
}

Status QueryService::SetUpObservability() {
  // Histograms are created after the worker pool so shard count == worker
  // count (one single-writer shard per worker).
  for (ServedIndex which : kAllServedIndexes) {
    for (QueryType type : kAllQueryTypes) {
      auto& slot = histograms_[static_cast<size_t>(which)]
                              [static_cast<size_t>(type)];
      slot = std::make_unique<LatencyHistogram>(workers_->size());
      stats_.RegisterHistogram(
          "lsdb_query_latency_ns",
          std::string("index=\"") + ServedIndexName(which) + "\",kind=\"" +
              QueryTypeName(type) + "\"",
          slot.get());
      // Profile aggregates share the histograms' sharding scheme: one
      // single-writer shard per worker.
      profiles_[static_cast<size_t>(which)][static_cast<size_t>(type)] =
          std::make_unique<introspect::ProfileAccumulator>(workers_->size());
    }
  }
  introspect_on_.store(options_.introspect, std::memory_order_relaxed);
  if (!options_.trace_path.empty()) {
    TracerOptions topt;
    topt.pool_event_sample_every = options_.trace_pool_sample_every;
    topt.max_bytes = options_.trace_max_bytes;
    LSDB_RETURN_IF_ERROR(tracer_.OpenFile(options_.trace_path, topt));
  }
  admission_ = std::make_unique<AdmissionQueue>(options_.admission);
  // Pool events flow to the service tracer (no-ops while it is disabled).
  seg_pool_->SetTracer(&tracer_, "segments");
  // The index-owned pools are private to each structure; their cache
  // behaviour reaches the registry via RefreshGauges() instead.
  return Status::OK();
}

StatsRegistry& QueryService::stats() {
  RefreshGauges();
  return stats_;
}

const LatencyHistogram& QueryService::latency_histogram(
    ServedIndex which, QueryType type) const {
  return *histograms_[static_cast<size_t>(which)][static_cast<size_t>(type)];
}

introspect::ProfileAccumulator::Summary QueryService::profile_summary(
    ServedIndex which, QueryType type) const {
  const auto& acc =
      profiles_[static_cast<size_t>(which)][static_cast<size_t>(type)];
  if (acc == nullptr) return {};
  return acc->Merge();
}

void QueryService::EnablePageHeat() {
  BufferPool* pools[] = {seg_pool_.get(), rstar_->mutable_pool(),
                         rplus_->mutable_pool(), pmr_->mutable_pool()};
  const PageFile* files[] = {seg_file_.get(), rstar_file_.get(),
                             rplus_file_.get(), pmr_file_.get()};
  for (size_t i = 0; i < std::size(pools); ++i) {
    if (heat_[i] != nullptr) continue;  // idempotent; keep existing counts
    // Served structures are frozen, so page_count() is final: no accesses
    // land in the overflow bucket.
    heat_[i] = std::make_unique<introspect::PageHeatMap>(
        files[i]->page_count(), workers_->size());
    pools[i]->SetPageHeat(heat_[i].get());
  }
}

void QueryService::RefreshGauges() {
  const struct {
    const char* name;
    const BufferPool* pool;
  } pools[] = {
      {"segments", seg_pool_.get()},
      {"R*", rstar_->pool()},
      {"R+", rplus_->pool()},
      {"PMR", pmr_->pool()},
  };
  for (const auto& p : pools) {
    const std::string labels = std::string("{pool=\"") + p.name + "\"}";
    stats_.GetGauge("lsdb_bufferpool_hit_ratio" + labels)
        ->Set(p.pool->hit_ratio());
    stats_.GetGauge("lsdb_bufferpool_hits" + labels)
        ->Set(static_cast<double>(p.pool->hits()));
    stats_.GetGauge("lsdb_bufferpool_misses" + labels)
        ->Set(static_cast<double>(p.pool->misses()));
    stats_.GetGauge("lsdb_bufferpool_evictions" + labels)
        ->Set(static_cast<double>(p.pool->evictions()));
    stats_.GetGauge("lsdb_bufferpool_pin_waits" + labels)
        ->Set(static_cast<double>(p.pool->pin_waits()));
    stats_.GetGauge("lsdb_pool_io_retries" + labels)
        ->Set(static_cast<double>(p.pool->io_retries()));
    stats_.GetGauge("lsdb_pool_checksum_failures" + labels)
        ->Set(static_cast<double>(p.pool->checksum_failures()));
  }
  for (ServedIndex which : kAllServedIndexes) {
    const std::string labels =
        std::string("{index=\"") + ServedIndexName(which) + "\"}";
    const CircuitBreaker& b = breakers_[static_cast<size_t>(which)];
    stats_.GetGauge("lsdb_degraded" + labels)->Set(b.open() ? 1.0 : 0.0);
    stats_.GetGauge("lsdb_breaker_rejected_total" + labels)
        ->Set(static_cast<double>(b.rejected()));
    stats_.GetGauge("lsdb_breaker_times_opened" + labels)
        ->Set(static_cast<double>(b.times_opened()));
    const FaultStats& fs = fault_injector(which)->stats();
    stats_.GetGauge("lsdb_fault_reads" + labels)
        ->Set(static_cast<double>(fs.reads.load()));
    stats_.GetGauge("lsdb_fault_read_transient" + labels)
        ->Set(static_cast<double>(fs.transient_read_faults.load()));
    stats_.GetGauge("lsdb_fault_read_permanent" + labels)
        ->Set(static_cast<double>(fs.permanent_read_faults.load()));
    stats_.GetGauge("lsdb_fault_bitflips" + labels)
        ->Set(static_cast<double>(fs.bitflips.load()));
    stats_.GetGauge("lsdb_fault_total" + labels)
        ->Set(static_cast<double>(fs.total_faults()));
  }
  for (uint32_t w = 0; w < workers_->size(); ++w) {
    stats_
        .GetGauge("lsdb_worker_items_processed{worker=\"" +
                  std::to_string(w) + "\"}")
        ->Set(static_cast<double>(workers_->items_processed(w)));
  }
  if (admission_ != nullptr) {
    const AdmissionStats a = admission_->Snapshot();
    stats_.GetGauge("lsdb_admission_queue_depth")
        ->Set(static_cast<double>(a.depth));
    stats_.GetGauge("lsdb_admission_queue_max_depth")
        ->Set(static_cast<double>(a.max_depth));
    stats_.GetGauge("lsdb_admission_admitted_total")
        ->Set(static_cast<double>(a.admitted));
    stats_.GetGauge("lsdb_admission_executed_total")
        ->Set(static_cast<double>(a.executed));
    stats_.GetGauge("lsdb_admission_timeouts_total")
        ->Set(static_cast<double>(a.timeouts));
    stats_.GetGauge("lsdb_admission_cancelled_total")
        ->Set(static_cast<double>(a.cancelled));
    stats_.GetGauge("lsdb_admission_last_queue_delay_ns")
        ->Set(static_cast<double>(a.last_queue_delay_ns));
    for (size_t i = 0; i < kNumShedReasons; ++i) {
      if (a.shed[i] == 0) continue;  // gauges appear once sheds exist
      stats_
          .GetGauge(std::string("lsdb_admission_shed_total{reason=\"") +
                    ShedReasonName(static_cast<ShedReason>(i)) + "\"}")
          ->Set(static_cast<double>(a.shed[i]));
    }
    stats_.GetGauge("lsdb_worker_tasks_pending")
        ->Set(static_cast<double>(workers_->tasks_pending()));
  }
  stats_.GetGauge("lsdb_introspect_enabled")
      ->Set(introspection() ? 1.0 : 0.0);
  stats_.GetGauge("lsdb_trace_lines_emitted")
      ->Set(static_cast<double>(tracer_.lines_emitted()));
  stats_.GetGauge("lsdb_trace_lines_dropped")
      ->Set(static_cast<double>(tracer_.lines_dropped()));
  for (ServedIndex which : kAllServedIndexes) {
    for (QueryType type : kAllQueryTypes) {
      const auto& acc =
          profiles_[static_cast<size_t>(which)][static_cast<size_t>(type)];
      if (acc == nullptr) continue;
      const introspect::ProfileAccumulator::Summary s = acc->Merge();
      if (s.queries == 0) continue;  // gauges appear once data exists
      const std::string labels = std::string("{index=\"") +
                                 ServedIndexName(which) + "\",kind=\"" +
                                 QueryTypeName(type) + "\"}";
      stats_.GetGauge("lsdb_introspect_queries" + labels)
          ->Set(static_cast<double>(s.queries));
      stats_.GetGauge("lsdb_introspect_nodes_per_query" + labels)
          ->Set(s.nodes_per_query());
      stats_.GetGauge("lsdb_introspect_false_leaf_read_rate" + labels)
          ->Set(s.false_leaf_read_rate());
      stats_.GetGauge("lsdb_introspect_false_bucket_read_rate" + labels)
          ->Set(s.false_bucket_read_rate());
      stats_.GetGauge("lsdb_introspect_prune_rate" + labels)
          ->Set(s.prune_rate());
    }
  }
  for (size_t i = 0; i < std::size(heat_); ++i) {
    if (heat_[i] == nullptr) continue;
    const char* heat_names[] = {"segments", "R*", "R+", "PMR"};
    const std::string labels =
        std::string("{pool=\"") + heat_names[i] + "\"}";
    stats_.GetGauge("lsdb_page_heat_touches" + labels)
        ->Set(static_cast<double>(heat_[i]->total()));
  }
  if (snapshot_ != nullptr) {
    stats_.GetGauge("lsdb_snapshot_zero_copy")
        ->Set(snapshot_zero_copy_ ? 1.0 : 0.0);
    const char* section_names[] = {"segments", "R*", "R+", "PMR"};
    for (size_t i = 0; i < 4; ++i) {
      if (snapshot_views_[i] == nullptr) continue;
      const std::string labels =
          std::string("{section=\"") + section_names[i] + "\"}";
      stats_.GetGauge("lsdb_snapshot_pages_verified" + labels)
          ->Set(static_cast<double>(snapshot_views_[i]->pages_verified()));
      stats_.GetGauge("lsdb_snapshot_section_pages" + labels)
          ->Set(static_cast<double>(snapshot_views_[i]->page_count()));
    }
  }
}

Status QueryService::BuildIndexes(const PolygonalMap& map) {
  IndexOptions io = options_.index;
  io.buffer_frames = options_.serving_buffer_frames;

  // Shared segment table. Its metrics pointer is null, as in the harness:
  // segment comparisons are counted by the per-worker sinks while serving.
  seg_file_ = std::make_unique<MemPageFile>(io.page_size);
  seg_pool_ =
      std::make_unique<BufferPool>(seg_file_.get(), io.buffer_frames,
                                   nullptr);
  segs_ = std::make_unique<SegmentTable>(seg_pool_.get(), nullptr);
  for (const Segment& s : map.segments) {
    LSDB_ASSIGN_OR_RETURN([[maybe_unused]] const SegmentId id,
                          segs_->Append(s));
  }

  rstar_file_ = std::make_unique<MemPageFile>(io.page_size);
  rplus_file_ = std::make_unique<MemPageFile>(io.page_size);
  pmr_file_ = std::make_unique<MemPageFile>(io.page_size);
  // Each structure's pool talks to its file through a fault injector. The
  // injectors stay transparent (no plan) during the build, so structure
  // layout and paper metrics are byte-identical with or without them.
  PageFile* files[] = {rstar_file_.get(), rplus_file_.get(),
                       pmr_file_.get()};
  for (ServedIndex which : kAllServedIndexes) {
    injectors_[static_cast<size_t>(which)] =
        std::make_unique<FaultInjectingPageFile>(
            files[static_cast<size_t>(which)]);
    breakers_[static_cast<size_t>(which)].set_options(options_.breaker);
  }
  rstar_ = std::make_unique<RStarTree>(
      io, fault_injector(ServedIndex::kRStar), segs_.get());
  rplus_ = std::make_unique<RPlusTree>(
      io, fault_injector(ServedIndex::kRPlus), segs_.get());
  pmr_ = std::make_unique<PmrQuadtree>(
      io, fault_injector(ServedIndex::kPmr), segs_.get());
  LSDB_RETURN_IF_ERROR(rstar_->Init());
  LSDB_RETURN_IF_ERROR(rplus_->Init());
  LSDB_RETURN_IF_ERROR(pmr_->Init());

  BulkItems items;
  if (options_.bulk_build) {
    items.reserve(map.segments.size());
    for (SegmentId id = 0; id < map.segments.size(); ++id) {
      items.emplace_back(id, map.segments[id]);
    }
  }
  for (SpatialIndex* idx :
       {static_cast<SpatialIndex*>(rstar_.get()),
        static_cast<SpatialIndex*>(rplus_.get()),
        static_cast<SpatialIndex*>(pmr_.get())}) {
    if (options_.bulk_build) {
      LSDB_RETURN_IF_ERROR(lsdb::BulkLoad(idx, items));
    } else {
      for (SegmentId id = 0; id < map.segments.size(); ++id) {
        LSDB_RETURN_IF_ERROR(idx->Insert(id, map.segments[id]));
      }
    }
    LSDB_RETURN_IF_ERROR(idx->Flush());
    idx->Freeze();
    // Throughput mode: rematerialize the frozen tree into the SoA scan
    // cache (no-op for structures without one). Fault injectors are armed
    // only after this, so the cache never absorbs an injected fault.
    if (options_.throughput_mode) {
      LSDB_RETURN_IF_ERROR(idx->BuildScanCache());
    }
  }
  // Refinement reads segments far more often than nodes; throughput mode
  // flattens the frozen table too so Get() skips the pool mutex + decode.
  if (options_.throughput_mode) {
    LSDB_RETURN_IF_ERROR(segs_->BuildFlatCache());
  }
  if (options_.inject_faults) ArmFaultInjectors();
  return Status::OK();
}

void QueryService::ArmFaultInjectors() {
  // Arm only once everything is built (or opened) and frozen. Decorrelate
  // the per-structure streams so one structure's fault draw sequence does
  // not mirror another's.
  for (ServedIndex which : kAllServedIndexes) {
    FaultPlan plan = options_.fault_plan;
    plan.seed +=
        0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(which) + 1);
    fault_injector(which)->set_plan(plan);
  }
}

Status QueryService::OpenIndexesFromSnapshot(bool zero_copy) {
  IndexOptions io = options_.index;
  io.buffer_frames = options_.serving_buffer_frames;
  using snapshot::SectionKind;

  // Segment table view + pool. The table is always served through the
  // pool-copy path in spirit (Get() goes through Fetch either way); with
  // zero_copy its Fetches borrow mapped bytes like the indexes'.
  LSDB_ASSIGN_OR_RETURN(
      std::unique_ptr<MmapPageFile> seg_view,
      snapshot_->OpenSection(SectionKind::kSegments, zero_copy));
  snapshot_views_[0] = seg_view.get();
  seg_file_ = std::move(seg_view);
  seg_pool_ = std::make_unique<BufferPool>(seg_file_.get(),
                                           io.buffer_frames, nullptr);
  segs_ = std::make_unique<SegmentTable>(seg_pool_.get(), nullptr);
  LSDB_RETURN_IF_ERROR(segs_->Open());
  if (segs_->size() != snapshot_->header().segment_count) {
    return Status::Corruption(
        "segment count mismatch between snapshot header and segment table");
  }

  const SectionKind kinds[] = {SectionKind::kRStar, SectionKind::kRPlus,
                               SectionKind::kPmr};
  std::unique_ptr<PageFile>* slots[] = {&rstar_file_, &rplus_file_,
                                        &pmr_file_};
  for (ServedIndex which : kAllServedIndexes) {
    const size_t i = static_cast<size_t>(which);
    LSDB_ASSIGN_OR_RETURN(std::unique_ptr<MmapPageFile> view,
                          snapshot_->OpenSection(kinds[i], zero_copy));
    snapshot_views_[i + 1] = view.get();
    *slots[i] = std::move(view);
    injectors_[i] =
        std::make_unique<FaultInjectingPageFile>(slots[i]->get());
    breakers_[i].set_options(options_.breaker);
  }
  rstar_ = std::make_unique<RStarTree>(
      io, fault_injector(ServedIndex::kRStar), segs_.get());
  rplus_ = std::make_unique<RPlusTree>(
      io, fault_injector(ServedIndex::kRPlus), segs_.get());
  pmr_ = std::make_unique<PmrQuadtree>(
      io, fault_injector(ServedIndex::kPmr), segs_.get());
  LSDB_RETURN_IF_ERROR(rstar_->Open());
  LSDB_RETURN_IF_ERROR(rplus_->Open());
  LSDB_RETURN_IF_ERROR(pmr_->Open());
  for (SpatialIndex* idx :
       {static_cast<SpatialIndex*>(rstar_.get()),
        static_cast<SpatialIndex*>(rplus_.get()),
        static_cast<SpatialIndex*>(pmr_.get())}) {
    idx->Freeze();
    // SoA sidecar rebuild on mmap open: the snapshot file carries only the
    // paged images, so throughput mode re-derives the scan cache from the
    // mapping here (verify-on-first-touch runs during this walk).
    if (options_.throughput_mode) {
      LSDB_RETURN_IF_ERROR(idx->BuildScanCache());
    }
  }
  if (options_.throughput_mode) {
    LSDB_RETURN_IF_ERROR(segs_->BuildFlatCache());
  }
  if (options_.inject_faults) ArmFaultInjectors();
  return Status::OK();
}

SpatialIndex* QueryService::index(ServedIndex which) {
  switch (which) {
    case ServedIndex::kRStar:
      return rstar_.get();
    case ServedIndex::kRPlus:
      return rplus_.get();
    case ServedIndex::kPmr:
      return pmr_.get();
  }
  return nullptr;
}

QueryResponse QueryService::ExecuteOne(ServedIndex which, SpatialIndex* idx,
                                       const QueryRequest& q,
                                       bool breaker_preapproved) {
  CircuitBreaker& breaker = breakers_[static_cast<size_t>(which)];
  QueryResponse r;
  // An admitted request that already consumed a half-open probe ticket at
  // submit must not consume a second one here.
  if (!breaker_preapproved && !breaker.AllowRequest()) {
    r.status = Status::Unavailable(
        std::string(ServedIndexName(which)) + " index degraded: breaker open");
    return r;
  }
  switch (q.type) {
    case QueryType::kPoint:
      r.status = idx->PointQueryEx(q.point, &r.hits);
      break;
    case QueryType::kWindow:
      r.status = idx->WindowQueryEx(q.window, &r.hits);
      break;
    case QueryType::kNearest: {
      auto n = idx->Nearest(q.point);
      if (n.ok()) r.nearest = *n;
      r.status = n.status();
      break;
    }
    case QueryType::kIncident:
      r.status = IncidentSegments(idx, q.point, &r.hits);
      break;
  }
  if (CircuitBreaker::IsFailure(r.status)) {
    if (breaker.RecordFailure()) {
      tracer_.EmitHealthEvent(ServedIndexName(which), "breaker_open");
    }
  } else if (CircuitBreaker::IsSuccess(r.status)) {
    if (breaker.RecordSuccess()) {
      tracer_.EmitHealthEvent(ServedIndexName(which), "breaker_closed");
    }
  }
  return r;
}

namespace {
/// Cache-line-padded per-worker counters so concurrent increments on
/// neighbouring workers do not false-share.
struct alignas(64) PaddedCounters {
  MetricCounters c;
};

/// Spatial sort key for throughput-mode grouping: Hilbert index of the
/// request window's center, clamped to the 16-bit curve domain.
uint64_t GroupedWindowKey(const QueryRequest& q) {
  const Rect w =
      q.type == QueryType::kWindow ? q.window : Rect::AtPoint(q.point);
  const Point c = w.Center();
  const uint32_t x = static_cast<uint32_t>(std::clamp<Coord>(c.x, 0, 65535));
  const uint32_t y = static_cast<uint32_t>(std::clamp<Coord>(c.y, 0, 65535));
  return HilbertEncode(16, x, y);
}
}  // namespace

StatusOr<BatchResult> QueryService::ExecuteBatch(
    ServedIndex which, const std::vector<QueryRequest>& batch) {
  SpatialIndex* idx = index(which);
  if (idx == nullptr) return Status::InvalidArgument("unknown index");
  BatchResult out;
  out.responses.resize(batch.size());
  std::vector<PaddedCounters> locals(workers_->size());
  const uint64_t id_base = next_query_id_.fetch_add(
      batch.size(), std::memory_order_relaxed);
  const auto run_one = [&](uint32_t worker, uint64_t i) {
        ScopedCounterSink sink(&locals[worker].c);
        // Per-query descent profile, installed only when introspection is
        // on (null install keeps the descent hooks on their one-branch
        // disabled path). The toggle is re-read per query, so a live flip
        // takes effect at the next query boundary.
        const bool prof_on =
            introspect_on_.load(std::memory_order_relaxed);
        introspect::QueryProfile prof;
        introspect::ScopedQueryProfile prof_scope(prof_on ? &prof : nullptr);
        // Per-query deadline/cancel scope. Requests carrying neither leave
        // the thread-local token null, so the descent checkpoints stay on
        // their one-load untaken-branch path and paper metrics are
        // byte-identical.
        CancelToken token;
        const bool tok_on =
            batch[i].deadline_ns > 0 || batch[i].cancel != nullptr;
        if (tok_on) {
          if (batch[i].deadline_ns > 0) token.ArmBudget(batch[i].deadline_ns);
          token.LinkParent(batch[i].cancel);
        }
        ScopedCancelScope cancel_scope(tok_on ? &token : nullptr);
        // Snapshot the worker-private counters around the query so its
        // exact metric deltas can be attributed to the span.
        const MetricCounters before = locals[worker].c;
        const auto t0 = std::chrono::steady_clock::now();
        out.responses[i] = ExecuteOne(which, idx, batch[i]);
        const auto t1 = std::chrono::steady_clock::now();
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count());
        out.responses[i].latency_ns = ns;
        histogram(which, batch[i].type)->Record(worker, ns);
        if (prof_on) {
          profiles_[static_cast<size_t>(which)]
                   [static_cast<size_t>(batch[i].type)]
                       ->Record(worker, prof);
        }
        if (tracer_.enabled()) {
          const MetricCounters d = locals[worker].c - before;
          QuerySpan span;
          span.query_id = id_base + i;
          span.kind = QueryTypeName(batch[i].type);
          span.structure = ServedIndexName(which);
          span.latency_ns = ns;
          span.disk_reads = d.disk_reads;
          span.segment_comps = d.segment_comps;
          span.bbox_comps = d.bbox_comps;
          span.bucket_comps = d.bucket_comps;
          span.worker = worker;
          if (prof_on) {
            span.has_introspect = true;
            span.nodes_visited = prof.nodes_visited;
            span.nodes_pruned = prof.entries_pruned();
            span.false_leaf_reads = prof.false_leaf_reads;
            span.false_bucket_reads = prof.false_bucket_reads;
            span.max_depth = prof.max_depth;
          }
          tracer_.EmitQuerySpan(span);
        }
  };
  if (!options_.throughput_mode) {
    workers_->ParallelFor(batch.size(), run_one);
  } else {
    // -- Throughput mode ----------------------------------------------------
    // Window and point queries without deadline/cancel tokens are grouped
    // and executed through the shared multi-window descent; everything else
    // (nearest, incident, token-carrying requests) keeps the per-query path
    // so cancellation checkpoints fire exactly as in the default mode.
    std::vector<uint32_t> grouped, solo;
    grouped.reserve(batch.size());
    for (uint32_t i = 0; i < batch.size(); ++i) {
      const QueryRequest& q = batch[i];
      const bool groupable =
          (q.type == QueryType::kWindow || q.type == QueryType::kPoint) &&
          q.deadline_ns == 0 && q.cancel == nullptr;
      (groupable ? grouped : solo).push_back(i);
    }
    // Sort groups by the Hilbert index of the window center: windows close
    // on the curve descend the same subtrees, so the contiguous chunk each
    // worker takes shares node visits ("one pinned node answers many
    // windows per visit").
    std::stable_sort(grouped.begin(), grouped.end(),
                     [&](uint32_t a, uint32_t b) {
                       return GroupedWindowKey(batch[a]) <
                              GroupedWindowKey(batch[b]);
                     });
    if (!grouped.empty()) {
      const uint32_t nchunks = static_cast<uint32_t>(
          std::min<size_t>(workers_->size(), grouped.size()));
      CircuitBreaker& breaker = breakers_[static_cast<size_t>(which)];
      workers_->ParallelFor(nchunks, [&](uint32_t worker, uint64_t c) {
        ScopedCounterSink sink(&locals[worker].c);
        const size_t begin = grouped.size() * c / nchunks;
        const size_t end = grouped.size() * (c + 1) / nchunks;
        std::vector<Rect> ws;
        std::vector<uint32_t> ids;  // Original request index per window.
        ws.reserve(end - begin);
        ids.reserve(end - begin);
        for (size_t k = begin; k < end; ++k) {
          const uint32_t i = grouped[k];
          // One breaker ticket per request, exactly as ExecuteOne takes.
          if (!breaker.AllowRequest()) {
            out.responses[i].status = Status::Unavailable(
                std::string(ServedIndexName(which)) +
                " index degraded: breaker open");
            continue;
          }
          ids.push_back(i);
          ws.push_back(batch[i].type == QueryType::kWindow
                           ? batch[i].window
                           : Rect::AtPoint(batch[i].point));
        }
        if (ids.empty()) return;
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<std::vector<SegmentHit>> hits;
        const Status s = idx->WindowQueryBatch(ws, &hits);
        const auto t1 = std::chrono::steady_clock::now();
        // The group executed as one descent; attribute the amortized share
        // to each request (documented in DESIGN.md §15).
        const uint64_t ns =
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                    .count()) /
            ids.size();
        for (size_t k = 0; k < ids.size(); ++k) {
          const uint32_t i = ids[k];
          QueryResponse& r = out.responses[i];
          r.status = s;
          if (s.ok()) r.hits = std::move(hits[k]);
          r.latency_ns = ns;
          histogram(which, batch[i].type)->Record(worker, ns);
          if (CircuitBreaker::IsFailure(s)) {
            if (breaker.RecordFailure()) {
              tracer_.EmitHealthEvent(ServedIndexName(which), "breaker_open");
            }
          } else if (CircuitBreaker::IsSuccess(s)) {
            if (breaker.RecordSuccess()) {
              tracer_.EmitHealthEvent(ServedIndexName(which),
                                      "breaker_closed");
            }
          }
        }
      });
    }
    if (!solo.empty()) {
      workers_->ParallelFor(solo.size(), [&](uint32_t worker, uint64_t k) {
        run_one(worker, solo[k]);
      });
    }
  }
  out.per_worker.reserve(locals.size());
  for (const PaddedCounters& pc : locals) {
    out.per_worker.push_back(pc.c);
    out.metrics += pc.c;
  }
  // Batch-level registry rollup: one atomic add per (kind, metric), not
  // per query, so the per-item hot path never contends on shared counters.
  const char* iname = ServedIndexName(which);
  uint64_t per_kind[std::size(kAllQueryTypes)] = {};
  for (const QueryRequest& q : batch) ++per_kind[static_cast<size_t>(q.type)];
  for (QueryType type : kAllQueryTypes) {
    const uint64_t n = per_kind[static_cast<size_t>(type)];
    if (n == 0) continue;
    stats_
        .GetCounter(std::string("lsdb_queries_total{index=\"") + iname +
                    "\",kind=\"" + QueryTypeName(type) + "\"}")
        ->Add(n);
  }
  const std::string mlabel = std::string("{index=\"") + iname + "\"}";
  stats_.GetCounter("lsdb_disk_reads_total" + mlabel)
      ->Add(out.metrics.disk_reads);
  stats_.GetCounter("lsdb_segment_comps_total" + mlabel)
      ->Add(out.metrics.segment_comps);
  stats_.GetCounter("lsdb_bbox_comps_total" + mlabel)
      ->Add(out.metrics.bbox_comps);
  stats_.GetCounter("lsdb_bucket_comps_total" + mlabel)
      ->Add(out.metrics.bucket_comps);
  stats_.GetCounter("lsdb_batches_total" + mlabel)->Add(1);
  return out;
}

StatusOr<BatchResult> QueryService::ExecuteBatchSequential(
    ServedIndex which, const std::vector<QueryRequest>& batch) {
  SpatialIndex* idx = index(which);
  if (idx == nullptr) return Status::InvalidArgument("unknown index");
  BatchResult out;
  out.responses.resize(batch.size());
  out.per_worker.resize(1);
  ScopedCounterSink sink(&out.per_worker[0]);
  const bool prof_on = introspect_on_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < batch.size(); ++i) {
    introspect::QueryProfile prof;
    introspect::ScopedQueryProfile prof_scope(prof_on ? &prof : nullptr);
    CancelToken token;
    const bool tok_on =
        batch[i].deadline_ns > 0 || batch[i].cancel != nullptr;
    if (tok_on) {
      if (batch[i].deadline_ns > 0) token.ArmBudget(batch[i].deadline_ns);
      token.LinkParent(batch[i].cancel);
    }
    ScopedCancelScope cancel_scope(tok_on ? &token : nullptr);
    out.responses[i] = ExecuteOne(which, idx, batch[i]);
    if (prof_on) {
      // Shard 0: the sequential path never runs concurrently with itself,
      // and the accumulator fields are relaxed atomics regardless.
      profiles_[static_cast<size_t>(which)]
               [static_cast<size_t>(batch[i].type)]
                   ->Record(0, prof);
    }
  }
  out.metrics += out.per_worker[0];
  return out;
}

void QueryService::CompleteShed(AdmissionQueue::Shed&& shed) {
  // kEvicted / kCoDel tickets were admitted (Offer counted their kind
  // slot); the other reasons reject before admission.
  if (shed.reason == ShedReason::kEvicted ||
      shed.reason == ShedReason::kCoDel) {
    admission_->OnFinished(shed.ticket.request.type);
  }
  if (tracer_.enabled()) {
    tracer_.EmitAdmissionEvent(ServedIndexName(shed.ticket.which),
                               ShedReasonName(shed.reason));
  }
  QueryResponse r;
  r.status = shed.reason == ShedReason::kShutdown
                 ? Status::Cancelled("shed: query service shutting down")
                 : Status::Unavailable(std::string("shed: ") +
                                       ShedReasonName(shed.reason));
  if (shed.ticket.done) shed.ticket.done(std::move(r));
}

void QueryService::SubmitQuery(ServedIndex which, const QueryRequest& q,
                               std::function<void(QueryResponse)> done) {
  // Brownout: while the structure's breaker is open, shed at submit
  // instead of occupying queue space behind requests that will fail
  // anyway. AllowRequest() still lets half-open probes through — those
  // carry their grant into execution via breaker_preapproved.
  bool preapproved = false;
  CircuitBreaker& b = breakers_[static_cast<size_t>(which)];
  if (options_.admission.brownout_on_breaker && b.open()) {
    if (!b.AllowRequest()) {
      admission_->RecordShed(ShedReason::kBrownout);
      if (tracer_.enabled()) {
        tracer_.EmitAdmissionEvent(ServedIndexName(which),
                                   ShedReasonName(ShedReason::kBrownout));
      }
      QueryResponse r;
      r.status = Status::Unavailable(
          std::string("shed: ") + ServedIndexName(which) +
          " degraded (breaker open)");
      if (done) done(std::move(r));
      return;
    }
    preapproved = true;
  }
  AdmissionQueue::Ticket t;
  t.which = which;
  t.request = q;
  t.done = std::move(done);
  t.token = std::make_unique<CancelToken>();
  const uint64_t budget = q.deadline_ns > 0
                              ? q.deadline_ns
                              : options_.admission.default_deadline_ns;
  if (budget > 0) t.token->ArmBudget(budget);
  t.token->LinkParent(q.cancel);
  t.enqueued = CancelToken::Clock::now();
  t.breaker_preapproved = preapproved;
  std::vector<AdmissionQueue::Shed> shed;
  const bool enqueued = admission_->Offer(std::move(t), &shed);
  for (AdmissionQueue::Shed& s : shed) CompleteShed(std::move(s));
  if (!enqueued) return;
  // One dispatch task per admitted ticket. Submit only fails while the
  // pool destructor runs, which ~QueryService sequences after Close() —
  // but complete inline rather than strand a ticket if it ever happens.
  if (!workers_->Submit([this](uint32_t w) { DispatchOne(w); })) {
    DispatchOne(0);
  }
}

void QueryService::DispatchOne(uint32_t worker) {
  AdmissionQueue::Ticket t;
  std::vector<AdmissionQueue::Shed> shed;
  const bool have = admission_->Take(&t, &shed);
  for (AdmissionQueue::Shed& s : shed) CompleteShed(std::move(s));
  // Drained by Close() or shed by CoDel before this task ran: nothing to
  // execute (the ticket was completed elsewhere).
  if (!have) return;
  SpatialIndex* idx = index(t.which);
  QueryResponse r;
  // Deadline check before touching the index: a ticket that burned its
  // whole budget queueing times out here without costing a descent.
  const Status pre = t.token->StatusNow();
  if (!pre.ok()) {
    r.status = pre;
  } else {
    // Thread-private sink: admitted queries must not mutate the frozen
    // indexes' own counters. The per-dispatch deltas are discarded —
    // admitted-path totals come from the registry counters below.
    MetricCounters scratch;
    ScopedCounterSink sink(&scratch);
    ScopedCancelScope cancel_scope(t.token.get());
    r = ExecuteOne(t.which, idx, t.request, t.breaker_preapproved);
  }
  // Latency is submit-to-completion: queueing delay is the overload
  // signal, so it belongs in the admitted path's histograms.
  const uint64_t ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          CancelToken::Clock::now() - t.enqueued)
          .count());
  r.latency_ns = ns;
  histogram(t.which, t.request.type)->Record(worker, ns);
  stats_
      .GetCounter(std::string("lsdb_queries_total{index=\"") +
                  ServedIndexName(t.which) + "\",kind=\"" +
                  QueryTypeName(t.request.type) + "\"}")
      ->Add(1);
  if (tracer_.enabled()) {
    if (r.status.IsDeadlineExceeded()) {
      tracer_.EmitAdmissionEvent(ServedIndexName(t.which), "timeout");
    } else if (r.status.IsCancelled()) {
      tracer_.EmitAdmissionEvent(ServedIndexName(t.which), "cancelled");
    }
  }
  admission_->OnExecuted(t.request.type, r.status);
  if (t.done) t.done(std::move(r));
}

StatusOr<BatchResult> QueryService::ExecuteBatchAdmitted(
    ServedIndex which, const std::vector<QueryRequest>& batch) {
  if (index(which) == nullptr) {
    return Status::InvalidArgument("unknown index");
  }
  BatchResult out;
  out.responses.resize(batch.size());
  Mutex mu("QueryService.batch_done");
  CondVar all_done;
  size_t remaining = batch.size();
  for (size_t i = 0; i < batch.size(); ++i) {
    SubmitQuery(which, batch[i], [&, i](QueryResponse r) {
      MutexLock lk(mu);
      out.responses[i] = std::move(r);
      if (--remaining == 0) all_done.NotifyOne();
    });
  }
  MutexLock lk(mu);
  // Bounded by construction, not by a wait deadline: every submitted
  // ticket is completed exactly once (executed, shed, or drained at
  // shutdown), so `remaining` always reaches zero.
  // NOLINTNEXTLINE(lsdb-unbounded-wait)
  all_done.Wait(mu, [&] { return remaining == 0; });
  return out;
}

}  // namespace lsdb
