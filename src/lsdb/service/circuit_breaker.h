// Per-structure circuit breaker for graceful degradation.
//
// The QueryService keeps one CircuitBreaker per served index. Every query
// outcome is classified: corruption and I/O errors count as failures,
// successful reads (including clean NotFound / InvalidArgument) reset the
// streak. After `failure_threshold` consecutive failures the breaker
// opens: requests are rejected fast with Status::Unavailable, without
// touching the failing structure's pages, while the other structures keep
// serving. An open breaker stays half-open: every `probe_interval`-th
// request is let through as a probe, so a structure whose fault was
// transient (or whose storage was repaired) closes the breaker again on
// the first probe that succeeds.
//
// Lock-free: workers record outcomes concurrently; all state is atomics,
// including the two option knobs, so set_options() is safe while the
// breaker is serving (a live reconfiguration applies to the next
// request/outcome that reads the knob — there is no torn read). The
// consecutive-failure count is monotonic enough for the purpose — an
// interleaved success resets it, which errs toward keeping the structure
// in service (the conservative direction for a read-only workload).

#ifndef LSDB_SERVICE_CIRCUIT_BREAKER_H_
#define LSDB_SERVICE_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstdint>

#include "lsdb/util/status.h"

namespace lsdb {

class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive failures that open the breaker.
    uint32_t failure_threshold = 5;
    /// While open, let every Nth request through as a half-open probe
    /// (the rest are rejected fast). Must be >= 1.
    uint32_t probe_interval = 64;
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(const Options& options) { set_options(options); }

  /// True if the request should be executed; false to fail it fast with
  /// kUnavailable. While open, every probe_interval-th caller is admitted
  /// as a probe.
  bool AllowRequest() {
    if (!open_.load(std::memory_order_acquire)) return true;
    const uint64_t ticket =
        probe_ticket_.fetch_add(1, std::memory_order_relaxed);
    if (ticket % probe_interval_.load(std::memory_order_relaxed) == 0) {
      return true;
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Classifies a query outcome. Failures are the storage-level error
  /// codes — corruption and I/O; logical outcomes (ok, NotFound,
  /// InvalidArgument) are successes. kUnavailable (our own fast-fail) and
  /// anything else leave the streak untouched.
  static bool IsFailure(const Status& s) {
    return s.IsCorruption() || s.IsIoError();
  }
  static bool IsSuccess(const Status& s) {
    return s.ok() || s.IsNotFound() || s.IsInvalidArgument();
  }

  /// Records a failed execution. Returns true iff this call opened the
  /// breaker (for one-shot trace/log events).
  bool RecordFailure() {
    const uint32_t streak =
        1 + consecutive_failures_.fetch_add(1, std::memory_order_relaxed);
    if (streak >= failure_threshold_.load(std::memory_order_relaxed) &&
        !open_.exchange(true, std::memory_order_acq_rel)) {
      times_opened_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Records a successful execution. Returns true iff this call closed a
  /// previously open breaker (a probe succeeded).
  bool RecordSuccess() {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    return open_.exchange(false, std::memory_order_acq_rel);
  }

  bool open() const { return open_.load(std::memory_order_acquire); }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t times_opened() const {
    return times_opened_.load(std::memory_order_relaxed);
  }
  /// By value: the knobs may be reconfigured live.
  Options options() const {
    Options o;
    o.failure_threshold = failure_threshold_.load(std::memory_order_relaxed);
    o.probe_interval = probe_interval_.load(std::memory_order_relaxed);
    return o;
  }
  /// Reconfigures thresholds. Safe while the breaker is shared across
  /// threads: each knob is a single atomic, applied to the next request
  /// or outcome that reads it. probe_interval is clamped to >= 1 (the
  /// modulo in AllowRequest must never divide by zero).
  void set_options(const Options& options) {
    failure_threshold_.store(options.failure_threshold,
                             std::memory_order_relaxed);
    probe_interval_.store(options.probe_interval < 1 ? 1
                                                     : options.probe_interval,
                          std::memory_order_relaxed);
  }

  /// Administrative reset to the closed state (streak cleared).
  void Reset() {
    consecutive_failures_.store(0, std::memory_order_relaxed);
    open_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<uint32_t> failure_threshold_{Options{}.failure_threshold};
  std::atomic<uint32_t> probe_interval_{Options{}.probe_interval};
  std::atomic<bool> open_{false};
  std::atomic<uint32_t> consecutive_failures_{0};
  std::atomic<uint64_t> probe_ticket_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> times_opened_{0};
};

}  // namespace lsdb

#endif  // LSDB_SERVICE_CIRCUIT_BREAKER_H_
