#include "lsdb/geom/morton.h"

#include <cassert>

namespace lsdb {

namespace {
/// Spreads the low 16 bits of v to even bit positions.
uint32_t Part1By1(uint32_t v) {
  v &= 0x0000ffffu;
  v = (v | (v << 8)) & 0x00ff00ffu;
  v = (v | (v << 4)) & 0x0f0f0f0fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

/// Compacts even bit positions of v into the low 16 bits.
uint32_t Compact1By1(uint32_t v) {
  v &= 0x55555555u;
  v = (v | (v >> 1)) & 0x33333333u;
  v = (v | (v >> 2)) & 0x0f0f0f0fu;
  v = (v | (v >> 4)) & 0x00ff00ffu;
  v = (v | (v >> 8)) & 0x0000ffffu;
  return v;
}
}  // namespace

uint32_t MortonEncode(uint32_t x, uint32_t y) {
  return Part1By1(x) | (Part1By1(y) << 1);
}

void MortonDecode(uint32_t code, uint32_t* x, uint32_t* y) {
  *x = Compact1By1(code);
  *y = Compact1By1(code >> 1);
}

uint64_t HilbertEncode(uint32_t order, uint32_t x, uint32_t y) {
  assert(order >= 1 && order <= 16);
  assert(x < (1u << order) && y < (1u << order));
  // Classical xy -> d conversion: walk the quadrant bits from the most
  // significant down, accumulating the sub-square index and rotating /
  // reflecting the remaining coordinates into the sub-square's frame.
  uint64_t d = 0;
  for (uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) ? 1 : 0;
    const uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Only the bits below s remain meaningful; mask before reflecting so
    // the subtraction cannot underflow.
    x &= s - 1;
    y &= s - 1;
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      const uint32_t t = x;
      x = y;
      y = t;
    }
  }
  return d;
}

namespace {
/// Mask of the bits below `bit` that belong to the same dimension
/// (bit-2, bit-4, ...).
uint32_t SameDimLowerMask(int bit) {
  uint32_t mask = 0;
  for (int b = bit - 2; b >= 0; b -= 2) mask |= 1u << b;
  return mask;
}
}  // namespace

bool ZOrderBigMin(uint32_t zmin, uint32_t zmax, uint32_t z, uint32_t* out) {
  uint32_t bigmin = 0;
  bool have_bigmin = false;
  uint32_t minv = zmin, maxv = zmax;
  for (int bit = 31; bit >= 0; --bit) {
    const uint32_t mask = 1u << bit;
    const uint32_t low = SameDimLowerMask(bit);
    const int zb = (z >> bit) & 1;
    const int minb = (minv >> bit) & 1;
    const int maxb = (maxv >> bit) & 1;
    const int code = (zb << 2) | (minb << 1) | maxb;
    switch (code) {
      case 0b000:
        break;
      case 0b001:
        // z can stay 0 here; remember the smallest in-rect value with this
        // bit set, then cap the search space below it.
        bigmin = (minv & ~(mask | low)) | mask;
        have_bigmin = true;
        maxv = (maxv & ~(mask | low)) | low;
        break;
      case 0b011:
        // Every in-rect value with this prefix exceeds z.
        *out = minv;
        return true;
      case 0b100:
        // No in-rect value with this prefix exceeds z.
        if (have_bigmin) {
          *out = bigmin;
          return true;
        }
        return false;
      case 0b101:
        // z has the bit set; raise the floor of the search space.
        minv = (minv & ~(mask | low)) | mask;
        break;
      case 0b111:
        break;
      default:
        // (0,1,0) and (1,1,0) imply min > max: invalid rectangle.
        return false;
    }
  }
  // z itself lies in the rectangle; the answer is the saved candidate.
  if (have_bigmin) {
    *out = bigmin;
    return true;
  }
  return false;
}

QuadGeometry::QuadGeometry(uint32_t world_log2, uint32_t max_depth)
    : world_log2_(world_log2), max_depth_(max_depth) {
  assert(world_log2 >= 1 && world_log2 <= 16);
  assert(max_depth >= 1 && max_depth <= world_log2 &&
         max_depth <= kMaxQuadDepth);
}

Rect QuadGeometry::BlockRegion(const QuadBlock& b) const {
  assert(b.depth <= max_depth_);
  uint32_t cx, cy;
  MortonDecode(b.morton, &cx, &cy);
  const Coord side = Coord{1} << (world_log2_ - b.depth);
  const Coord x0 = static_cast<Coord>(cx) * side;
  const Coord y0 = static_cast<Coord>(cy) * side;
  // Blocks are closed and share edges with their neighbours: the union of
  // sibling regions is exactly the parent region with no continuous gaps,
  // so a segment crossing between lattice lines always intersects at least
  // one block. Objects on a shared edge belong to both blocks.
  return Rect::Of(x0, y0, x0 + side, y0 + side);
}

QuadBlock QuadGeometry::MaxDepthBlockAt(const Point& p) const {
  assert(p.x >= 0 && p.x < world_size() && p.y >= 0 && p.y < world_size());
  const uint32_t shift = world_log2_ - max_depth_;
  const uint32_t cx = static_cast<uint32_t>(p.x) >> shift;
  const uint32_t cy = static_cast<uint32_t>(p.y) >> shift;
  return QuadBlock{MortonEncode(cx, cy), static_cast<uint8_t>(max_depth_)};
}

uint64_t QuadGeometry::PackKey(const QuadBlock& b, uint32_t segid) const {
  assert(b.depth <= max_depth_);
  const uint64_t full = FullMorton(b);
  return (full << 36) | (static_cast<uint64_t>(b.depth) << 32) | segid;
}

void QuadGeometry::UnpackKey(uint64_t key, QuadBlock* b,
                             uint32_t* segid) const {
  *segid = static_cast<uint32_t>(key & 0xffffffffu);
  const uint32_t depth = static_cast<uint32_t>((key >> 32) & 0xfu);
  const uint32_t full = static_cast<uint32_t>(key >> 36);
  b->depth = static_cast<uint8_t>(depth);
  // A depth nibble above max_depth_ cannot come from PackKey; decode it
  // without shifting so the expression stays defined for arbitrary (e.g.
  // corrupt) inputs. Disk-read paths use UnpackKeyChecked to reject them.
  b->morton = depth <= max_depth_ ? full >> (2 * (max_depth_ - depth)) : full;
}

Status QuadGeometry::UnpackKeyChecked(uint64_t key, QuadBlock* b,
                                      uint32_t* segid) const {
  const uint32_t depth = static_cast<uint32_t>((key >> 32) & 0xfu);
  const uint32_t full = static_cast<uint32_t>(key >> 36);
  if (depth > max_depth_) {
    return Status::Corruption("quadtree key depth exceeds max depth");
  }
  if (static_cast<uint64_t>(full) >= (uint64_t{1} << (2 * max_depth_))) {
    return Status::Corruption("quadtree key locational code out of range");
  }
  const uint32_t sub_bits = 2 * (max_depth_ - depth);
  if ((full & ((uint32_t{1} << sub_bits) - 1)) != 0) {
    return Status::Corruption(
        "quadtree key locational code set below block resolution");
  }
  UnpackKey(key, b, segid);
  return Status::OK();
}

uint64_t QuadGeometry::SubtreeKeyLow(const QuadBlock& b) const {
  return static_cast<uint64_t>(FullMorton(b)) << 36;
}

uint64_t QuadGeometry::SubtreeKeyHigh(const QuadBlock& b) const {
  const uint64_t cells = uint64_t{1} << (2 * (max_depth_ - b.depth));
  const uint64_t end = (static_cast<uint64_t>(FullMorton(b)) + cells) << 36;
  return end - 1;  // inclusive upper bound of the subtree key range
}

uint64_t QuadGeometry::PointProbeKey(const Point& p) const {
  const QuadBlock b = MaxDepthBlockAt(p);
  // Any real tuple in the leaf containing p sorts at or before this key:
  // the deepest possible block at p's cell, maximal depth and segid fields.
  return (static_cast<uint64_t>(b.morton) << 36) | (uint64_t{0xf} << 32) |
         0xffffffffu;
}

}  // namespace lsdb
