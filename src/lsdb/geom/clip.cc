#include "lsdb/geom/clip.h"

#include <cmath>

namespace lsdb {

namespace {
constexpr uint8_t kLeft = 1;
constexpr uint8_t kRight = 2;
constexpr uint8_t kBottom = 4;
constexpr uint8_t kTop = 8;
}  // namespace

uint8_t Outcode(const Point& p, const Rect& r) {
  uint8_t code = 0;
  if (p.x < r.xmin) {
    code |= kLeft;
  } else if (p.x > r.xmax) {
    code |= kRight;
  }
  if (p.y < r.ymin) {
    code |= kBottom;
  } else if (p.y > r.ymax) {
    code |= kTop;
  }
  return code;
}

bool ClipSegment(const Segment& s, const Rect& r, Segment* out) {
  double x0 = s.a.x, y0 = s.a.y, x1 = s.b.x, y1 = s.b.y;
  auto outcode = [&r](double x, double y) {
    uint8_t code = 0;
    if (x < r.xmin) {
      code |= kLeft;
    } else if (x > r.xmax) {
      code |= kRight;
    }
    if (y < r.ymin) {
      code |= kBottom;
    } else if (y > r.ymax) {
      code |= kTop;
    }
    return code;
  };

  uint8_t c0 = outcode(x0, y0);
  uint8_t c1 = outcode(x1, y1);
  for (int iter = 0; iter < 32; ++iter) {
    if ((c0 | c1) == 0) {
      out->a = Point{static_cast<Coord>(std::lround(x0)),
                     static_cast<Coord>(std::lround(y0))};
      out->b = Point{static_cast<Coord>(std::lround(x1)),
                     static_cast<Coord>(std::lround(y1))};
      return true;
    }
    if ((c0 & c1) != 0) return false;
    const uint8_t c = c0 != 0 ? c0 : c1;
    double x = 0, y = 0;
    if (c & kTop) {
      x = x0 + (x1 - x0) * (r.ymax - y0) / (y1 - y0);
      y = r.ymax;
    } else if (c & kBottom) {
      x = x0 + (x1 - x0) * (r.ymin - y0) / (y1 - y0);
      y = r.ymin;
    } else if (c & kRight) {
      y = y0 + (y1 - y0) * (r.xmax - x0) / (x1 - x0);
      x = r.xmax;
    } else {  // kLeft
      y = y0 + (y1 - y0) * (r.xmin - x0) / (x1 - x0);
      x = r.xmin;
    }
    if (c == c0) {
      x0 = x;
      y0 = y;
      c0 = outcode(x0, y0);
    } else {
      x1 = x;
      y1 = y;
      c1 = outcode(x1, y1);
    }
  }
  return false;  // Pathological numeric loop; treat as miss.
}

}  // namespace lsdb
