// Integer point type on the normalized world grid.
//
// Following the paper, every map is normalized to a 16K x 16K pixel grid
// (world coordinates are int32 in [0, 16384)). Exact integer arithmetic on
// these coordinates keeps every containment / intersection predicate
// consistent between index construction and query evaluation.

#ifndef LSDB_GEOM_POINT_H_
#define LSDB_GEOM_POINT_H_

#include <cstdint>
#include <functional>

namespace lsdb {

/// World coordinate. int32 is ample for the 16K grid and lets cross
/// products fit exactly in int64.
using Coord = int32_t;

/// A point on the world grid.
struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }
  /// Lexicographic (x, then y); used for canonical segment orientation.
  friend bool operator<(const Point& a, const Point& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  }
};

/// 2D cross product (b - a) x (c - a); exact in int64.
/// Positive if a->b->c is a counterclockwise turn.
inline int64_t Cross(const Point& a, const Point& b, const Point& c) {
  return static_cast<int64_t>(b.x - a.x) * (c.y - a.y) -
         static_cast<int64_t>(b.y - a.y) * (c.x - a.x);
}

/// Squared Euclidean distance between two points (exact in int64).
inline int64_t SquaredDistance(const Point& a, const Point& b) {
  const int64_t dx = static_cast<int64_t>(a.x) - b.x;
  const int64_t dy = static_cast<int64_t>(a.y) - b.y;
  return dx * dx + dy * dy;
}

struct PointHash {
  size_t operator()(const Point& p) const {
    uint64_t v = (static_cast<uint64_t>(static_cast<uint32_t>(p.x)) << 32) |
                 static_cast<uint32_t>(p.y);
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdULL;
    v ^= v >> 33;
    return static_cast<size_t>(v);
  }
};

}  // namespace lsdb

#endif  // LSDB_GEOM_POINT_H_
