// Cohen-Sutherland style segment clipping.
//
// The paper notes that q-edges (the part of a segment inside a quadtree
// block) are never stored explicitly — they are recomputed by clipping the
// original segment to the block when needed. This module provides that
// clipping for diagnostics and for split-cut counting in the R+-tree.

#ifndef LSDB_GEOM_CLIP_H_
#define LSDB_GEOM_CLIP_H_

#include <cstdint>

#include "lsdb/geom/rect.h"
#include "lsdb/geom/segment.h"

namespace lsdb {

/// Cohen-Sutherland outcode of p relative to r.
uint8_t Outcode(const Point& p, const Rect& r);

/// Clips `s` to the closed rectangle `r` using double intermediates with
/// rounding back to the grid. Returns false if the segment misses the
/// rectangle. The clipped result is written to *out (may alias &s).
///
/// Note: because results are rounded back to integer coordinates the
/// clipped segment is an approximation of the q-edge; the exact predicate
/// Segment::IntersectsRect must be used for containment decisions.
bool ClipSegment(const Segment& s, const Rect& r, Segment* out);

}  // namespace lsdb

#endif  // LSDB_GEOM_CLIP_H_
