#include "lsdb/geom/rect.h"

#include <sstream>

namespace lsdb {

Rect Rect::Union(const Rect& r) const {
  if (empty()) return r;
  if (r.empty()) return *this;
  return Rect{std::min(xmin, r.xmin), std::min(ymin, r.ymin),
              std::max(xmax, r.xmax), std::max(ymax, r.ymax)};
}

Rect Rect::Intersection(const Rect& r) const {
  if (!Intersects(r)) return Rect{};
  return Rect{std::max(xmin, r.xmin), std::max(ymin, r.ymin),
              std::min(xmax, r.xmax), std::min(ymax, r.ymax)};
}

int64_t Rect::OverlapArea(const Rect& r) const {
  return Intersection(r).Area();
}

int64_t Rect::Enlargement(const Rect& r) const {
  return Union(r).Area() - Area();
}

int64_t Rect::SquaredDistanceTo(const Point& p) const {
  // Computing with inverted bounds would yield a small bogus distance that
  // could steer nearest-neighbour descents into empty entries.
  if (empty()) return INT64_MAX;
  int64_t dx = 0;
  if (p.x < xmin) {
    dx = static_cast<int64_t>(xmin) - p.x;
  } else if (p.x > xmax) {
    dx = static_cast<int64_t>(p.x) - xmax;
  }
  int64_t dy = 0;
  if (p.y < ymin) {
    dy = static_cast<int64_t>(ymin) - p.y;
  } else if (p.y > ymax) {
    dy = static_cast<int64_t>(p.y) - ymax;
  }
  return dx * dx + dy * dy;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "[" << xmin << "," << ymin << " .. " << xmax << "," << ymax << "]";
  return os.str();
}

}  // namespace lsdb
