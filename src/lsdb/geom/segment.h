// Line segment type and exact predicates.
//
// Segments are the primary data objects of the study ("polygonal maps" of
// road networks). Predicates here are exact over int64 arithmetic; only the
// distance *values* returned for nearest-neighbour ranking use double.

#ifndef LSDB_GEOM_SEGMENT_H_
#define LSDB_GEOM_SEGMENT_H_

#include <cstdint>
#include <string>

#include "lsdb/geom/point.h"
#include "lsdb/geom/rect.h"

namespace lsdb {

/// Identifier of a segment in the segment table.
using SegmentId = uint32_t;
inline constexpr SegmentId kInvalidSegmentId = 0xffffffffu;

struct Segment {
  Point a;
  Point b;

  Rect Mbr() const { return Rect::Bound(a, b); }

  bool IsDegenerate() const { return a == b; }

  /// True iff p lies on the closed segment (exact).
  bool ContainsPoint(const Point& p) const;

  /// True iff the closed segment intersects the closed rectangle (exact).
  /// A segment touching only the rectangle boundary intersects it.
  bool IntersectsRect(const Rect& r) const;

  /// True iff the two closed segments share at least one point (exact).
  bool IntersectsSegment(const Segment& s) const;

  /// Squared Euclidean distance from p to the closed segment.
  double SquaredDistanceTo(const Point& p) const;

  /// Given one endpoint of the segment, return the other. Requires p to be
  /// an endpoint (asserts in debug builds).
  Point OtherEndpoint(const Point& p) const;

  std::string ToString() const;

  friend bool operator==(const Segment& x, const Segment& y) {
    return x.a == y.a && x.b == y.b;
  }
};

}  // namespace lsdb

#endif  // LSDB_GEOM_SEGMENT_H_
