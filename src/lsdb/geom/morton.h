// Morton (Z-order) locational codes for the linear PMR quadtree.
//
// The paper's PMR quadtree is implemented (as in QUILT) as a *linear
// quadtree*: each q-edge is a 2-tuple (L, O) where L is a locational code —
// the depth of the block plus the bit-interleaved coordinates of its lower
// left corner — and O a segment id. Tuples are packed into a single uint64
// B-tree key:
//
//   [ full-resolution Morton : 28 bits ][ depth : 4 bits ][ seg id : 32 ]
//
// "Full-resolution Morton" is the block's Morton code shifted up to the
// maximum depth (14), so that a parent block and its NW-most descendant
// share the same prefix and Z-order is the B-tree key order. Point location
// is a single predecessor search on (morton(p) at depth 14, depth 15).

#ifndef LSDB_GEOM_MORTON_H_
#define LSDB_GEOM_MORTON_H_

#include <cstdint>

#include "lsdb/geom/point.h"
#include "lsdb/geom/rect.h"
#include "lsdb/util/status.h"

namespace lsdb {

/// Maximum quadtree depth supported by the 64-bit packed code. The paper
/// uses exactly 14 (a 16K x 16K image).
inline constexpr uint32_t kMaxQuadDepth = 14;

/// Interleaves the low 16 bits of x (even positions) and y (odd positions).
uint32_t MortonEncode(uint32_t x, uint32_t y);

/// Inverse of MortonEncode.
void MortonDecode(uint32_t code, uint32_t* x, uint32_t* y);

/// Hilbert curve index of cell (x, y) on a 2^order x 2^order grid
/// (order <= 16; the result occupies 2*order bits). Unlike the Morton
/// order, consecutive Hilbert indexes are always 4-adjacent cells, which
/// makes it the better sort key for packing R-tree leaves: a run of
/// consecutive indexes covers a compact blob instead of a Z-shaped strip.
uint64_t HilbertEncode(uint32_t order, uint32_t x, uint32_t y);

/// BIGMIN (Tropf & Herzog 1981): the smallest Morton code z' > z whose
/// decoded point lies in the rectangle spanned component-wise by
/// Decode(zmin)..Decode(zmax). Returns false when no such code exists.
/// This is the jump operator that lets a Z-ordered scan skip the gaps a
/// rectangle leaves in Morton order.
bool ZOrderBigMin(uint32_t zmin, uint32_t zmax, uint32_t z, uint32_t* out);

/// A quadtree block: Morton code of its cell at `depth` levels below the
/// root. The root block is {0, 0}. Depth d partitions the world into 2^d x
/// 2^d cells.
struct QuadBlock {
  uint32_t morton = 0;  ///< Bit-interleaved cell coords at this depth.
  uint8_t depth = 0;

  QuadBlock Child(int quadrant) const {  // quadrant in 0..3 (Z order)
    return QuadBlock{(morton << 2) | static_cast<uint32_t>(quadrant),
                     static_cast<uint8_t>(depth + 1)};
  }
  QuadBlock Parent() const {
    return QuadBlock{morton >> 2, static_cast<uint8_t>(depth - 1)};
  }
  /// Index of this block among its siblings (0..3).
  int Quadrant() const { return static_cast<int>(morton & 3u); }

  friend bool operator==(const QuadBlock& a, const QuadBlock& b) {
    return a.morton == b.morton && a.depth == b.depth;
  }
};

/// Geometry of quadtree blocks over a world of side 2^world_log2 pixels,
/// with blocks no deeper than max_depth (cell side = 2^(world_log2-depth)).
class QuadGeometry {
 public:
  /// world_log2 in [1, 16]; max_depth in [1, min(world_log2, 14)].
  QuadGeometry(uint32_t world_log2, uint32_t max_depth);

  uint32_t world_log2() const { return world_log2_; }
  uint32_t max_depth() const { return max_depth_; }
  Coord world_size() const { return Coord{1} << world_log2_; }
  /// Closed world region. Data coordinates live in [0, world_size - 1];
  /// the region extends to world_size so that boundary blocks close.
  Rect WorldRect() const { return Rect::Of(0, 0, world_size(), world_size()); }

  /// Closed region covered by a block. Neighbouring blocks share their
  /// boundary edges (no continuous gaps between blocks).
  Rect BlockRegion(const QuadBlock& b) const;

  /// The unique depth-max block whose half-open cell contains p.
  /// p must have coordinates in [0, world_size - 1].
  QuadBlock MaxDepthBlockAt(const Point& p) const;

  /// Packs a block + segment id into a B-tree key.
  uint64_t PackKey(const QuadBlock& b, uint32_t segid) const;
  /// Inverse of PackKey. Total: defined for every 64-bit input, including
  /// depth nibbles above max_depth() (which PackKey never produces — such
  /// keys decode with an unshifted locational code rather than hitting an
  /// out-of-range shift). Callers decoding keys read from disk should use
  /// UnpackKeyChecked instead.
  void UnpackKey(uint64_t key, QuadBlock* b, uint32_t* segid) const;
  /// UnpackKey for untrusted (disk-loaded) keys: rejects keys no PackKey
  /// call can have produced — depth nibble above max_depth(), locational
  /// code out of range or with bits below the block's resolution — with
  /// Status::Corruption, leaving *b/*segid untouched on failure.
  [[nodiscard]] Status UnpackKeyChecked(uint64_t key, QuadBlock* b,
                                        uint32_t* segid) const;

  /// Smallest key of any tuple stored for block b itself.
  uint64_t BlockKeyLow(const QuadBlock& b) const { return PackKey(b, 0); }
  /// Largest key of any tuple stored for block b itself.
  uint64_t BlockKeyHigh(const QuadBlock& b) const {
    return PackKey(b, 0xffffffffu);
  }
  /// Smallest key of any tuple stored in b's subtree (b or descendants).
  uint64_t SubtreeKeyLow(const QuadBlock& b) const;
  /// Largest key of any tuple stored in b's subtree.
  uint64_t SubtreeKeyHigh(const QuadBlock& b) const;

  /// Key used for predecessor search when locating the leaf containing p.
  uint64_t PointProbeKey(const Point& p) const;

 private:
  uint32_t FullMorton(const QuadBlock& b) const {
    return b.morton << (2 * (max_depth_ - b.depth));
  }

  uint32_t world_log2_;
  uint32_t max_depth_;
};

}  // namespace lsdb

#endif  // LSDB_GEOM_MORTON_H_
