#include "lsdb/geom/segment.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace lsdb {

bool Segment::ContainsPoint(const Point& p) const {
  if (Cross(a, b, p) != 0) return false;
  return Mbr().Contains(p);
}

namespace {

/// Exact segment-segment intersection via orientation tests, handling all
/// collinear / touching configurations.
bool SegmentsIntersect(const Point& p1, const Point& p2, const Point& q1,
                       const Point& q2) {
  const int64_t d1 = Cross(q1, q2, p1);
  const int64_t d2 = Cross(q1, q2, p2);
  const int64_t d3 = Cross(p1, p2, q1);
  const int64_t d4 = Cross(p1, p2, q2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  auto on = [](const Point& a, const Point& b, const Point& c, int64_t d) {
    return d == 0 && Rect::Bound(a, b).Contains(c);
  };
  return on(q1, q2, p1, d1) || on(q1, q2, p2, d2) || on(p1, p2, q1, d3) ||
         on(p1, p2, q2, d4);
}

}  // namespace

bool Segment::IntersectsSegment(const Segment& s) const {
  return SegmentsIntersect(a, b, s.a, s.b);
}

bool Segment::IntersectsRect(const Rect& r) const {
  if (r.empty()) return false;
  // Fast accept: an endpoint inside the rectangle.
  if (r.Contains(a) || r.Contains(b)) return true;
  // Fast reject: bounding boxes disjoint.
  if (!r.Intersects(Mbr())) return false;
  // Otherwise the segment intersects the rectangle iff it crosses one of
  // the rectangle's four edges.
  const Point c00{r.xmin, r.ymin};
  const Point c10{r.xmax, r.ymin};
  const Point c11{r.xmax, r.ymax};
  const Point c01{r.xmin, r.ymax};
  return SegmentsIntersect(a, b, c00, c10) ||
         SegmentsIntersect(a, b, c10, c11) ||
         SegmentsIntersect(a, b, c11, c01) ||
         SegmentsIntersect(a, b, c01, c00);
}

double Segment::SquaredDistanceTo(const Point& p) const {
  const int64_t dx = static_cast<int64_t>(b.x) - a.x;
  const int64_t dy = static_cast<int64_t>(b.y) - a.y;
  const int64_t len2 = dx * dx + dy * dy;
  if (len2 == 0) {
    return static_cast<double>(SquaredDistance(a, p));
  }
  // Projection parameter t = ((p-a).(b-a)) / |b-a|^2, clamped to [0,1].
  const int64_t dot = static_cast<int64_t>(p.x - a.x) * dx +
                      static_cast<int64_t>(p.y - a.y) * dy;
  if (dot <= 0) return static_cast<double>(SquaredDistance(a, p));
  if (dot >= len2) return static_cast<double>(SquaredDistance(b, p));
  // Perpendicular distance^2 = cross^2 / len2, exact numerator.
  const int64_t cross = Cross(a, b, p);
  return static_cast<double>(cross) * static_cast<double>(cross) /
         static_cast<double>(len2);
}

Point Segment::OtherEndpoint(const Point& p) const {
  assert(p == a || p == b);
  return p == a ? b : a;
}

std::string Segment::ToString() const {
  std::ostringstream os;
  os << "(" << a.x << "," << a.y << ")-(" << b.x << "," << b.y << ")";
  return os.str();
}

}  // namespace lsdb
