// Axis-aligned integer rectangle (closed on all sides).
//
// Rectangles serve both as minimum bounding rectangles (R-tree entries) and
// as space-partition regions (R+-tree, quadtree blocks, query windows). The
// semantics contract, which every caller (and the SIMD node-scan kernels in
// src/lsdb/simd/) must agree on:
//
//  * Closed boundaries: points on an edge or corner are contained, and two
//    rectangles sharing only an edge or corner DO intersect. Partition
//    regions (R+ nodes, quadtree blocks, grid cells) exploit this by
//    tiling space with shared boundary lines, so a query point or crossing
//    segment always lies in at least one region.
//  * Degenerate is not empty: zero width and/or height (xmin == xmax,
//    ymin == ymax) is a valid line or point rectangle — a vertical
//    segment's MBR and a point query's window are degenerate. Degenerate
//    rectangles contain points and intersect other rectangles by the same
//    closed rules; only their Area() is zero.
//  * Empty means inverted: xmax < xmin or ymax < ymin (the
//    default-constructed state). An empty rectangle contains nothing,
//    intersects nothing (including itself), is the identity for Union and
//    absorbing for Intersection, and has Area() == Margin() == 0.
//  * Shared edges have zero overlap area: Intersects() may be true while
//    OverlapArea() == 0 (the overlap region is degenerate). Code that
//    prunes on positive overlap must handle the touching case explicitly
//    (see pmr/window_decompose.cc).

#ifndef LSDB_GEOM_RECT_H_
#define LSDB_GEOM_RECT_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "lsdb/geom/point.h"

namespace lsdb {

struct Rect {
  Coord xmin = 0;
  Coord ymin = 0;
  Coord xmax = -1;  ///< Default-constructed rect is empty (xmax < xmin).
  Coord ymax = -1;

  static Rect Of(Coord xmin, Coord ymin, Coord xmax, Coord ymax) {
    return Rect{xmin, ymin, xmax, ymax};
  }
  /// MBR of two points (any order).
  static Rect Bound(const Point& a, const Point& b) {
    return Rect{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
                std::max(a.y, b.y)};
  }
  /// Degenerate rectangle covering exactly one point.
  static Rect AtPoint(const Point& p) { return Rect{p.x, p.y, p.x, p.y}; }

  bool empty() const { return xmax < xmin || ymax < ymin; }

  int64_t Width() const { return static_cast<int64_t>(xmax) - xmin; }
  int64_t Height() const { return static_cast<int64_t>(ymax) - ymin; }
  /// Area of the closed rectangle treated as a continuous region.
  int64_t Area() const { return empty() ? 0 : Width() * Height(); }
  /// Half perimeter (margin), the R*-tree split metric.
  int64_t Margin() const { return empty() ? 0 : Width() + Height(); }

  /// Center rounded toward -infinity on both axes. Floor division (an
  /// arithmetic shift, well-defined on signed values since C++20) keeps the
  /// rounding direction uniform across the origin; `/ 2` would truncate
  /// toward zero and bias centers upward for negative coordinate sums,
  /// skewing R* reinsert distance ordering and Hilbert bulk-load keys on
  /// maps spanning negative coordinates.
  Point Center() const {
    return Point{static_cast<Coord>((static_cast<int64_t>(xmin) + xmax) >> 1),
                 static_cast<Coord>((static_cast<int64_t>(ymin) + ymax) >> 1)};
  }

  bool Contains(const Point& p) const {
    return p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax;
  }
  bool Contains(const Rect& r) const {
    return !r.empty() && r.xmin >= xmin && r.xmax <= xmax && r.ymin >= ymin &&
           r.ymax <= ymax;
  }
  /// Closed-rectangle intersection test (shared edges intersect).
  bool Intersects(const Rect& r) const {
    return !empty() && !r.empty() && r.xmin <= xmax && r.xmax >= xmin &&
           r.ymin <= ymax && r.ymax >= ymin;
  }

  /// Smallest rectangle covering both (empty operands are identities).
  Rect Union(const Rect& r) const;
  /// Intersection region; empty rect if disjoint.
  Rect Intersection(const Rect& r) const;
  /// Area of overlap with r (0 when disjoint). Degenerate overlap regions
  /// (shared edges) have zero area.
  int64_t OverlapArea(const Rect& r) const;
  /// How much this rect's area grows if extended to include r.
  int64_t Enlargement(const Rect& r) const;

  /// Squared Euclidean distance from p to the closed rectangle (0 inside,
  /// including on the boundary). An empty rectangle contains no points, so
  /// its distance is INT64_MAX ("infinitely far"), never 0.
  int64_t SquaredDistanceTo(const Point& p) const;

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.xmin == b.xmin && a.ymin == b.ymin && a.xmax == b.xmax &&
           a.ymax == b.ymax;
  }
  friend bool operator!=(const Rect& a, const Rect& b) { return !(a == b); }
};

}  // namespace lsdb

#endif  // LSDB_GEOM_RECT_H_
