#include "lsdb/seg/segment_table.h"

#include <cstring>

#include "lsdb/storage/superblock.h"

namespace lsdb {

namespace {
constexpr uint32_t kRecordSize = 16;  // 4 x int32 coordinates

void EncodeSegment(const Segment& s, uint8_t* p) {
  int32_t v[4] = {s.a.x, s.a.y, s.b.x, s.b.y};
  std::memcpy(p, v, sizeof(v));
}

void DecodeSegment(const uint8_t* p, Segment* s) {
  int32_t v[4];
  std::memcpy(v, p, sizeof(v));
  s->a = Point{v[0], v[1]};
  s->b = Point{v[2], v[3]};
}
}  // namespace

SegmentTable::SegmentTable(BufferPool* pool, MetricCounters* metrics)
    : pool_(pool),
      metrics_(metrics),
      per_page_(pool->page_size() / kRecordSize) {}

Status SegmentTable::Open() {
  auto fields = ReadSuperblock(pool_, 0, SuperblockKind::kSegmentTable);
  if (!fields.ok()) return fields.status();
  const SuperblockFields& f = *fields;
  if (f[1] != per_page_) {
    return Status::InvalidArgument("page size does not match stored table");
  }
  count_ = static_cast<uint32_t>(f[0]);
  has_superblock_ = true;
  last_page_ = count_ == 0 ? kInvalidPageId : 1 + (count_ - 1) / per_page_;
  return Status::OK();
}

Status SegmentTable::Flush() {
  if (!has_superblock_) {
    // Empty table that never allocated its superblock page.
    auto sb = pool_->New();
    if (!sb.ok()) return sb.status();
    if (sb->id() != 0) {
      return Status::InvalidArgument("Flush() requires this table's file");
    }
    has_superblock_ = true;
  }
  SuperblockFields f{};
  f[0] = count_;
  f[1] = per_page_;
  LSDB_RETURN_IF_ERROR(
      WriteSuperblock(pool_, 0, SuperblockKind::kSegmentTable, f));
  return pool_->FlushAll();
}

Status SegmentTable::BuildFlatCache() {
  // Redirect the decode walk's counters to a scratch so building the cache
  // never moves the paper's segment-comparison accounting.
  MetricCounters scratch;
  ScopedCounterSink scoped(&scratch);
  flat_.clear();
  flat_.reserve(count_);
  for (SegmentId id = 0; id < count_; ++id) {
    const PageId page = 1 + id / per_page_;
    const uint32_t slot = id % per_page_;
    auto ref = pool_->Fetch(page);
    if (!ref.ok()) {
      flat_.clear();
      return ref.status();
    }
    Segment s;
    DecodeSegment(ref->data() + slot * kRecordSize, &s);
    flat_.push_back(s);
  }
  return Status::OK();
}

StatusOr<SegmentId> SegmentTable::Append(const Segment& s) {
  // Any append invalidates the frozen flat cache (no-op when absent).
  flat_.clear();
  if (!has_superblock_) {
    // Reserve page 0 for the superblock before the first record page.
    auto sb = pool_->New();
    if (!sb.ok()) return sb.status();
    if (sb->id() != 0) {
      return Status::InvalidArgument("Append() requires a fresh page file");
    }
    has_superblock_ = true;
  }
  const uint32_t slot = count_ % per_page_;
  if (slot == 0) {
    auto ref = pool_->New();
    if (!ref.ok()) return ref.status();
    last_page_ = ref->id();
    EncodeSegment(s, ref->data());
    ref->MarkDirty();
  } else {
    auto ref = pool_->Fetch(last_page_);
    if (!ref.ok()) return ref.status();
    EncodeSegment(s, ref->data() + slot * kRecordSize);
    ref->MarkDirty();
  }
  return count_++;
}

Status SegmentTable::Get(SegmentId id, Segment* out) {
  if (id >= count_) return Status::InvalidArgument("segment id out of range");
  if (MetricCounters* m = CounterSink(metrics_)) ++m->segment_comps;
  if (!flat_.empty()) {
    *out = flat_[id];
    return Status::OK();
  }
  const PageId page = 1 + id / per_page_;
  const uint32_t slot = id % per_page_;
  auto ref = pool_->Fetch(page);
  if (!ref.ok()) return ref.status();
  DecodeSegment(ref->data() + slot * kRecordSize, out);
  return Status::OK();
}

uint64_t SegmentTable::bytes() const {
  return static_cast<uint64_t>((count_ + per_page_ - 1) / per_page_) *
         pool_->page_size();
}

}  // namespace lsdb
