// Disk-resident segment table.
//
// All three indexes in the study store only *references* (segment ids) plus
// bounding information; the actual endpoints live in a shared, paged
// segment table ("O is a pointer to a segment table that contains the
// endpoints of the line segment ... assumed to be on disk"). Every Get() is
// one *segment comparison* in the paper's accounting.
//
// Records are fixed-size (4 coordinates = 16 bytes), addressed by
// SegmentId: page = id / records_per_page, slot = id % records_per_page.
// Ids are dense and allocated by Append; segments inserted together are
// stored together, which reproduces the paper's locality argument ("since
// the segments are usually in proximity, they will be stored close to each
// other").

#ifndef LSDB_SEG_SEGMENT_TABLE_H_
#define LSDB_SEG_SEGMENT_TABLE_H_

#include <cstdint>
#include <vector>

#include "lsdb/geom/segment.h"
#include "lsdb/storage/buffer_pool.h"
#include "lsdb/util/counters.h"
#include "lsdb/util/status.h"

namespace lsdb {

class SegmentTable {
 public:
  /// `pool` should be dedicated to the table (its disk activity is reported
  /// separately from index disk accesses, as in the paper). `metrics`
  /// receives one segment_comps increment per Get; may be null.
  ///
  /// Page 0 of the file holds a superblock (written by Flush, allocated
  /// lazily on the first Append); records start at page 1. A table
  /// persisted with Flush() into a PosixPageFile can be reopened with
  /// Open().
  SegmentTable(BufferPool* pool, MetricCounters* metrics);

  /// Restores a table previously persisted with Flush().
  [[nodiscard]] Status Open();
  /// Writes the superblock and flushes dirty pages.
  [[nodiscard]] Status Flush();

  /// Appends a segment, returning its dense id.
  [[nodiscard]] StatusOr<SegmentId> Append(const Segment& s);

  /// Fetches segment `id`. Counts one segment comparison.
  [[nodiscard]] Status Get(SegmentId id, Segment* out);

  /// Rematerializes every record into a flat in-memory array; subsequent
  /// Get() calls serve from it without touching the buffer pool. Strictly
  /// opt-in (QueryService builds it only in throughput mode): the paper
  /// harness and fault-injection paths depend on Get() reaching the pool.
  /// Counter accounting is unchanged — a cached Get() still counts one
  /// segment comparison — and the build itself redirects its counters to a
  /// scratch sink. Dropped automatically by the next Append().
  [[nodiscard]] Status BuildFlatCache();
  void DropFlatCache() { flat_.clear(); }
  bool flat_cache_enabled() const { return !flat_.empty(); }

  /// Number of stored segments.
  uint32_t size() const { return count_; }
  /// Bytes occupied (live pages * page size).
  uint64_t bytes() const;

  uint32_t records_per_page() const { return per_page_; }

  /// The table's buffer pool (caller-owned), for cache-behaviour reports.
  const BufferPool* pool() const { return pool_; }
  BufferPool* pool() { return pool_; }

 private:
  BufferPool* pool_;
  MetricCounters* metrics_;
  uint32_t per_page_;
  uint32_t count_ = 0;
  bool has_superblock_ = false;
  PageId last_page_ = kInvalidPageId;
  std::vector<Segment> flat_;  ///< Read-only cache; empty unless built.
};

}  // namespace lsdb

#endif  // LSDB_SEG_SEGMENT_TABLE_H_
