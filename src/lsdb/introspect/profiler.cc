#include "lsdb/introspect/profiler.h"

#include <algorithm>
#include <cstdio>

namespace lsdb {
namespace introspect {

namespace {

uint32_t ClampLevel(uint32_t depth) {
  return std::min(depth, QueryProfile::kMaxLevels - 1);
}

}  // namespace

void QueryProfile::OnNode(uint32_t depth, bool leaf, uint64_t scanned,
                          uint64_t matched, uint64_t results_added) {
  ++nodes_visited;
  entries_scanned += scanned;
  entries_matched += matched;
  max_depth = std::max(max_depth, depth);
  Level& lv = levels[ClampLevel(depth)];
  ++lv.visits;
  lv.entries_scanned += scanned;
  lv.entries_matched += matched;
  if (leaf) {
    ++leaves_visited;
    results += results_added;
    if (results_added == 0) {
      ++false_leaf_reads;
    }
  }
}

void QueryProfile::OnBtreeNode(uint32_t depth, bool leaf, uint64_t scanned,
                               uint64_t matched) {
  ++nodes_visited;
  entries_scanned += scanned;
  entries_matched += matched;
  max_depth = std::max(max_depth, depth);
  Level& lv = levels[ClampLevel(depth)];
  ++lv.visits;
  lv.entries_scanned += scanned;
  lv.entries_matched += matched;
  if (leaf) {
    ++leaves_visited;
  }
}

void QueryProfile::BeginBucket(uint32_t quad_depth) {
  ++buckets_visited;
  max_quad_depth = std::max(max_quad_depth, quad_depth);
  bucket_results_mark_ = results;
}

void QueryProfile::EndBucket() {
  if (results == bucket_results_mark_) {
    ++false_bucket_reads;
  }
}

void QueryProfile::OnResult(uint64_t n) {
  results += n;
}

QueryProfile& QueryProfile::operator+=(const QueryProfile& rhs) {
  nodes_visited += rhs.nodes_visited;
  leaves_visited += rhs.leaves_visited;
  false_leaf_reads += rhs.false_leaf_reads;
  entries_scanned += rhs.entries_scanned;
  entries_matched += rhs.entries_matched;
  buckets_visited += rhs.buckets_visited;
  false_bucket_reads += rhs.false_bucket_reads;
  results += rhs.results;
  max_depth = std::max(max_depth, rhs.max_depth);
  max_quad_depth = std::max(max_quad_depth, rhs.max_quad_depth);
  for (uint32_t i = 0; i < kMaxLevels; ++i) {
    levels[i].visits += rhs.levels[i].visits;
    levels[i].entries_scanned += rhs.levels[i].entries_scanned;
    levels[i].entries_matched += rhs.levels[i].entries_matched;
  }
  return *this;
}

ProfileAccumulator::ProfileAccumulator(uint32_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

void ProfileAccumulator::Record(uint32_t shard, const QueryProfile& p) {
  Shard& s = shards_[shard % shards_.size()];
  s.queries.fetch_add(1, std::memory_order_relaxed);
  s.nodes_visited.fetch_add(p.nodes_visited, std::memory_order_relaxed);
  s.leaves_visited.fetch_add(p.leaves_visited, std::memory_order_relaxed);
  s.false_leaf_reads.fetch_add(p.false_leaf_reads, std::memory_order_relaxed);
  s.entries_scanned.fetch_add(p.entries_scanned, std::memory_order_relaxed);
  s.entries_matched.fetch_add(p.entries_matched, std::memory_order_relaxed);
  s.buckets_visited.fetch_add(p.buckets_visited, std::memory_order_relaxed);
  s.false_bucket_reads.fetch_add(p.false_bucket_reads,
                                 std::memory_order_relaxed);
  s.results.fetch_add(p.results, std::memory_order_relaxed);
  // Single writer per shard: a load-compare-store max is safe here.
  if (p.max_depth > s.max_depth.load(std::memory_order_relaxed)) {
    s.max_depth.store(p.max_depth, std::memory_order_relaxed);
  }
  if (p.max_quad_depth > s.max_quad_depth.load(std::memory_order_relaxed)) {
    s.max_quad_depth.store(p.max_quad_depth, std::memory_order_relaxed);
  }
  for (uint32_t i = 0; i < QueryProfile::kMaxLevels; ++i) {
    const QueryProfile::Level& lv = p.levels[i];
    if (lv.visits == 0 && lv.entries_scanned == 0) {
      continue;
    }
    s.levels[i].visits.fetch_add(lv.visits, std::memory_order_relaxed);
    s.levels[i].entries_scanned.fetch_add(lv.entries_scanned,
                                          std::memory_order_relaxed);
    s.levels[i].entries_matched.fetch_add(lv.entries_matched,
                                          std::memory_order_relaxed);
  }
}

ProfileAccumulator::Summary ProfileAccumulator::Merge() const {
  Summary out;
  for (const Shard& s : shards_) {
    out.queries += s.queries.load(std::memory_order_relaxed);
    QueryProfile& t = out.totals;
    t.nodes_visited += s.nodes_visited.load(std::memory_order_relaxed);
    t.leaves_visited += s.leaves_visited.load(std::memory_order_relaxed);
    t.false_leaf_reads += s.false_leaf_reads.load(std::memory_order_relaxed);
    t.entries_scanned += s.entries_scanned.load(std::memory_order_relaxed);
    t.entries_matched += s.entries_matched.load(std::memory_order_relaxed);
    t.buckets_visited += s.buckets_visited.load(std::memory_order_relaxed);
    t.false_bucket_reads +=
        s.false_bucket_reads.load(std::memory_order_relaxed);
    t.results += s.results.load(std::memory_order_relaxed);
    t.max_depth = std::max(t.max_depth,
                           s.max_depth.load(std::memory_order_relaxed));
    t.max_quad_depth = std::max(
        t.max_quad_depth, s.max_quad_depth.load(std::memory_order_relaxed));
    for (uint32_t i = 0; i < QueryProfile::kMaxLevels; ++i) {
      t.levels[i].visits +=
          s.levels[i].visits.load(std::memory_order_relaxed);
      t.levels[i].entries_scanned +=
          s.levels[i].entries_scanned.load(std::memory_order_relaxed);
      t.levels[i].entries_matched +=
          s.levels[i].entries_matched.load(std::memory_order_relaxed);
    }
  }
  return out;
}

double ProfileAccumulator::Summary::nodes_per_query() const {
  return queries == 0 ? 0.0
                      : static_cast<double>(totals.nodes_visited) /
                            static_cast<double>(queries);
}

double ProfileAccumulator::Summary::false_leaf_read_rate() const {
  return totals.leaves_visited == 0
             ? 0.0
             : static_cast<double>(totals.false_leaf_reads) /
                   static_cast<double>(totals.leaves_visited);
}

double ProfileAccumulator::Summary::false_bucket_read_rate() const {
  return totals.buckets_visited == 0
             ? 0.0
             : static_cast<double>(totals.false_bucket_reads) /
                   static_cast<double>(totals.buckets_visited);
}

double ProfileAccumulator::Summary::prune_rate() const {
  return totals.entries_scanned == 0
             ? 0.0
             : static_cast<double>(totals.entries_pruned()) /
                   static_cast<double>(totals.entries_scanned);
}

std::string ProfileAccumulator::Summary::ToJson() const {
  char buf[512];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"queries\":%llu,\"nodes_visited\":%llu,"
                "\"leaves_visited\":%llu,\"false_leaf_reads\":%llu,"
                "\"entries_scanned\":%llu,\"entries_matched\":%llu,"
                "\"entries_pruned\":%llu,\"buckets_visited\":%llu,"
                "\"false_bucket_reads\":%llu,\"results\":%llu,"
                "\"max_depth\":%u,\"max_quad_depth\":%u",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(totals.nodes_visited),
                static_cast<unsigned long long>(totals.leaves_visited),
                static_cast<unsigned long long>(totals.false_leaf_reads),
                static_cast<unsigned long long>(totals.entries_scanned),
                static_cast<unsigned long long>(totals.entries_matched),
                static_cast<unsigned long long>(totals.entries_pruned()),
                static_cast<unsigned long long>(totals.buckets_visited),
                static_cast<unsigned long long>(totals.false_bucket_reads),
                static_cast<unsigned long long>(totals.results),
                totals.max_depth, totals.max_quad_depth);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"nodes_per_query\":%.3f,\"false_leaf_read_rate\":%.4f,"
                "\"false_bucket_read_rate\":%.4f,\"prune_rate\":%.4f",
                nodes_per_query(), false_leaf_read_rate(),
                false_bucket_read_rate(), prune_rate());
  out += buf;
  out += ",\"levels\":[";
  uint32_t top = QueryProfile::kMaxLevels;
  while (top > 0 && totals.levels[top - 1].visits == 0) {
    --top;
  }
  for (uint32_t i = 0; i < top; ++i) {
    const QueryProfile::Level& lv = totals.levels[i];
    const double util =
        lv.entries_scanned == 0
            ? 0.0
            : static_cast<double>(lv.entries_matched) /
                  static_cast<double>(lv.entries_scanned);
    std::snprintf(buf, sizeof(buf),
                  "%s{\"depth\":%u,\"visits\":%llu,"
                  "\"entries_scanned\":%llu,\"entries_matched\":%llu,"
                  "\"fanout_utilization\":%.4f}",
                  i == 0 ? "" : ",", i,
                  static_cast<unsigned long long>(lv.visits),
                  static_cast<unsigned long long>(lv.entries_scanned),
                  static_cast<unsigned long long>(lv.entries_matched), util);
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace introspect
}  // namespace lsdb
