// Query-path profiler: opt-in, per-query recording of what a descent
// actually did — nodes visited vs. pruned, false-positive leaf and bucket
// reads (pages touched that contributed no results), descent depth, and
// per-level fanout utilization.
//
// The paper's MetricCounters (util/counters.h) answer *how much* disk and
// comparison work each structure does; this profiler answers *why* — which
// levels fan out, which leaves are read for nothing, how deep the PMR
// quadrant decomposition goes per query. The two are entirely separate:
// nothing here touches MetricCounters, so Table 1/2 metrics are
// byte-identical whether profiling is on or off.
//
// Cost model when off: every hook site in a descent loop goes through the
// LSDB_INTROSPECT(...) macro below, which compiles to one thread-local
// pointer load and an untaken branch. No counters are maintained, nothing
// shared is written, no allocation happens. When on, a query records into
// a caller-owned QueryProfile via the same thread-local redirect mechanism
// as ScopedCounterSink.

#ifndef LSDB_INTROSPECT_PROFILER_H_
#define LSDB_INTROSPECT_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lsdb {
namespace introspect {

/// What one query's descent did, recorded at node granularity. Levels are
/// depths from the root (root = 0), clamped to kMaxLevels-1.
struct QueryProfile {
  static constexpr uint32_t kMaxLevels = 16;

  uint64_t nodes_visited = 0;    ///< Index nodes loaded (R-tree + B-tree).
  uint64_t leaves_visited = 0;   ///< Leaf nodes among those.
  uint64_t false_leaf_reads = 0; ///< Leaves that contributed no results.
  uint64_t entries_scanned = 0;  ///< Entry rects / keys examined in nodes.
  uint64_t entries_matched = 0;  ///< Entries passing the node-level test.
  uint64_t entries_pruned() const {
    return entries_scanned - entries_matched;
  }
  uint64_t buckets_visited = 0;    ///< PMR leaf blocks probed.
  uint64_t false_bucket_reads = 0; ///< Blocks that contributed no results.
  uint64_t results = 0;            ///< Hits the query produced.
  uint32_t max_depth = 0;          ///< Deepest node depth reached.
  uint32_t max_quad_depth = 0;     ///< Deepest PMR quadrant depth probed.

  /// Per-level fanout utilization: of the entries scanned at this depth,
  /// how many survived the window/prune test.
  struct Level {
    uint64_t visits = 0;
    uint64_t entries_scanned = 0;
    uint64_t entries_matched = 0;
  };
  Level levels[kMaxLevels] = {};

  /// One index node processed: `scanned` entries examined, `matched` of
  /// them passed the node-level test, `results_added` hits appended while
  /// processing it (leaves only; used to flag false-positive leaf reads).
  void OnNode(uint32_t depth, bool leaf, uint64_t scanned, uint64_t matched,
              uint64_t results_added);

  /// One B-tree page processed during a PMR descent/scan. Feeds the node
  /// and level counters only — false-positive accounting for the PMR runs
  /// at bucket granularity (Begin/EndBucket), not at page granularity.
  void OnBtreeNode(uint32_t depth, bool leaf, uint64_t scanned,
                   uint64_t matched);

  /// PMR bucket probes: BeginBucket marks the result count before the
  /// block's segment list is scanned; EndBucket compares against it to
  /// decide whether the bucket read was a false positive. Calls do not
  /// nest (descents visit one bucket at a time).
  void BeginBucket(uint32_t quad_depth);
  void EndBucket();

  /// A query hit was produced (refinement passed). Drives the false-read
  /// accounting for buckets.
  void OnResult(uint64_t n);

  QueryProfile& operator+=(const QueryProfile& rhs);

 private:
  uint64_t bucket_results_mark_ = 0;
};

namespace internal {
/// Active per-thread recording target (null = profiling off). Owned by
/// ScopedQueryProfile; never touch directly outside this header.
inline thread_local QueryProfile* tls_query_profile = nullptr;
}  // namespace internal

/// The profile the calling thread is recording into, or null when off.
inline QueryProfile* ThreadProfile() {
  return internal::tls_query_profile;
}

/// RAII install: while alive, descent hooks on the constructing thread
/// record into `profile` (pass null to run with profiling off). Scopes
/// nest — the innermost wins — and must be destroyed on the thread that
/// created them, mirroring ScopedCounterSink.
class ScopedQueryProfile {
 public:
  explicit ScopedQueryProfile(QueryProfile* profile)
      : prev_(internal::tls_query_profile) {
    internal::tls_query_profile = profile;
  }
  ~ScopedQueryProfile() { internal::tls_query_profile = prev_; }

  ScopedQueryProfile(const ScopedQueryProfile&) = delete;
  ScopedQueryProfile& operator=(const ScopedQueryProfile&) = delete;

 private:
  QueryProfile* prev_;
};

/// Lock-free aggregate of many QueryProfiles, sharded per worker like
/// LatencyHistogram: each shard is single-writer (its worker), readers
/// Merge() concurrently, every field is a relaxed atomic so a live toggle
/// under the worker pool is race-free.
class ProfileAccumulator {
 public:
  explicit ProfileAccumulator(uint32_t shards);

  /// Fold one finished query's profile into shard `shard` (the worker
  /// index). Single writer per shard.
  void Record(uint32_t shard, const QueryProfile& p);

  /// Merged totals, readable while workers record.
  struct Summary {
    uint64_t queries = 0;
    QueryProfile totals;

    /// Mean per-query derived rates; zero when no queries recorded.
    double nodes_per_query() const;
    double false_leaf_read_rate() const;   ///< false leaf reads / leaf visits
    double false_bucket_read_rate() const; ///< false bucket reads / buckets
    double prune_rate() const;             ///< pruned / scanned entries

    std::string ToJson() const;
  };
  Summary Merge() const;

  uint32_t shards() const { return static_cast<uint32_t>(shards_.size()); }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> nodes_visited{0};
    std::atomic<uint64_t> leaves_visited{0};
    std::atomic<uint64_t> false_leaf_reads{0};
    std::atomic<uint64_t> entries_scanned{0};
    std::atomic<uint64_t> entries_matched{0};
    std::atomic<uint64_t> buckets_visited{0};
    std::atomic<uint64_t> false_bucket_reads{0};
    std::atomic<uint64_t> results{0};
    std::atomic<uint32_t> max_depth{0};
    std::atomic<uint32_t> max_quad_depth{0};
    struct Level {
      std::atomic<uint64_t> visits{0};
      std::atomic<uint64_t> entries_scanned{0};
      std::atomic<uint64_t> entries_matched{0};
    };
    Level levels[QueryProfile::kMaxLevels];
  };
  std::vector<Shard> shards_;
};

}  // namespace introspect
}  // namespace lsdb

/// The only sanctioned way to touch profiling state from inside an index
/// descent loop (enforced by the lsdb-hot-counter-in-descent lint rule):
/// expands to a thread-local load plus a branch when profiling is off.
///
///   LSDB_INTROSPECT(OnNode(depth, node.leaf(), scanned, matched, added));
#define LSDB_INTROSPECT(stmt)                              \
  do {                                                     \
    ::lsdb::introspect::QueryProfile* lsdb_prof_ =         \
        ::lsdb::introspect::ThreadProfile();               \
    if (lsdb_prof_ != nullptr) {                           \
      lsdb_prof_->stmt;                                    \
    }                                                      \
  } while (0)

#endif  // LSDB_INTROSPECT_PROFILER_H_
