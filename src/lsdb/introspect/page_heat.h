// Hot-page heatmap: per-page access counters for a serving index.
//
// A PageHeatMap is attached to a BufferPool (or MmapPageFile) after the
// structure is frozen; every logical page access — pool hit, pool miss, or
// zero-copy mmap reference — bumps a sharded relaxed atomic. Off by
// default: an unattached pool pays one null-pointer test per access.
//
// Shards exist purely to keep concurrent workers off the same cache lines;
// any thread may touch any shard (the shard is picked by thread identity),
// and Merge() folds them into a plain per-page vector for reporting.

#ifndef LSDB_INTROSPECT_PAGE_HEAT_H_
#define LSDB_INTROSPECT_PAGE_HEAT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsdb/storage/page_file.h"

namespace lsdb {
namespace introspect {

class PageHeatMap {
 public:
  /// Tracks pages [0, page_count). Accesses to pages at or beyond
  /// page_count land in overflow() instead of being lost (a file can grow
  /// after attachment; heat for grown pages is not per-page attributed).
  explicit PageHeatMap(uint32_t page_count, uint32_t shards = 8);

  /// One logical access to `id`. Relaxed atomic add; callable from any
  /// thread concurrently with Merge().
  void Touch(PageId id);

  uint32_t page_count() const { return page_count_; }
  uint64_t total() const;
  uint64_t overflow() const;

  /// Per-page counts, indexed by page id.
  std::vector<uint64_t> Merge() const;

  struct RankEntry {
    PageId page = 0;
    uint64_t count = 0;
  };
  /// Pages with nonzero heat, hottest first (ties broken by page id so the
  /// report is deterministic for a deterministic workload).
  std::vector<RankEntry> Ranked() const;

  /// Human-readable rank-ordered report of the `top_n` hottest pages with
  /// cumulative share of all accesses.
  std::string RankedReport(size_t top_n) const;

  /// Machine-readable summary (totals, hottest pages, skew).
  std::string ToJson(size_t top_n) const;

 private:
  uint32_t ShardForThisThread() const;

  uint32_t page_count_;
  uint32_t shard_count_;
  // shard-major layout: shard s, page p lives at s * page_count_ + p.
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::unique_ptr<std::atomic<uint64_t>[]> overflow_;
};

}  // namespace introspect
}  // namespace lsdb

#endif  // LSDB_INTROSPECT_PAGE_HEAT_H_
