#include "lsdb/introspect/xray.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "lsdb/btree/btree.h"
#include "lsdb/geom/morton.h"
#include "lsdb/geom/rect.h"
#include "lsdb/pmr/pmr_quadtree.h"
#include "lsdb/rplus/rplus_tree.h"
#include "lsdb/rtree/rnode.h"
#include "lsdb/rtree/rstar_tree.h"

namespace lsdb {
namespace introspect {

namespace {

/// Exact union area of closed rectangles treated as continuous regions
/// ([xmin,xmax] x [ymin,ymax]), by x-coordinate compression: at most ~50
/// rects per node, so the O(n^2 log n) sweep is trivial.
double UnionArea(const std::vector<RNodeEntry>& entries) {
  std::vector<int64_t> xs;
  xs.reserve(entries.size() * 2);
  for (const RNodeEntry& e : entries) {
    if (e.rect.empty()) {
      continue;
    }
    xs.push_back(e.rect.xmin);
    xs.push_back(e.rect.xmax);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  double area = 0.0;
  std::vector<std::pair<int64_t, int64_t>> spans;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    const int64_t x0 = xs[i];
    const int64_t x1 = xs[i + 1];
    spans.clear();
    for (const RNodeEntry& e : entries) {
      if (!e.rect.empty() && e.rect.xmin <= x0 && e.rect.xmax >= x1) {
        spans.emplace_back(e.rect.ymin, e.rect.ymax);
      }
    }
    std::sort(spans.begin(), spans.end());
    int64_t covered = 0;
    int64_t cur_lo = 0;
    int64_t cur_hi = -1;
    bool open = false;
    for (const auto& [lo, hi] : spans) {
      if (!open || lo > cur_hi) {
        if (open) {
          covered += cur_hi - cur_lo;
        }
        cur_lo = lo;
        cur_hi = hi;
        open = true;
      } else {
        cur_hi = std::max(cur_hi, hi);
      }
    }
    if (open) {
      covered += cur_hi - cur_lo;
    }
    area += static_cast<double>(x1 - x0) * static_cast<double>(covered);
  }
  return area;
}

/// Shared walk over the R-tree style node graphs (R* and R+): occupancy
/// per node kind plus the internal-node child-rect geometry sums.
struct RTreeWalk {
  uint32_t capacity = 0;
  XRayReport* out = nullptr;
  double mbr_area_sum = 0;
  double child_area_sum = 0;
  double overlap_sum = 0;
  double union_sum = 0;

  void OnNode(const RNode& node) {
    if (node.leaf()) {
      out->leaf.Add(node.entries.size(), capacity);
      out->stored_entries += node.entries.size();
      return;
    }
    out->internal.Add(node.entries.size(), capacity);
    const Rect mbr = node.Mbr();
    const double mbr_area = static_cast<double>(mbr.Area());
    if (mbr_area <= 0.0) {
      return;
    }
    mbr_area_sum += mbr_area;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      child_area_sum += static_cast<double>(node.entries[i].rect.Area());
      for (size_t j = i + 1; j < node.entries.size(); ++j) {
        overlap_sum += static_cast<double>(
            node.entries[i].rect.OverlapArea(node.entries[j].rect));
      }
    }
    union_sum += UnionArea(node.entries);
  }

  void Finish() {
    out->pages = out->leaf.pages + out->internal.pages;
    out->has_rtree_geometry = true;
    if (mbr_area_sum > 0.0) {
      out->coverage_ratio = child_area_sum / mbr_area_sum;
      out->overlap_ratio = overlap_sum / mbr_area_sum;
      out->dead_space_ratio = (mbr_area_sum - union_sum) / mbr_area_sum;
    }
  }
};

void AppendOccupancyJson(const OccupancyStats& o, const char* key,
                         std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"pages\":%llu,\"entries\":%llu,\"capacity\":%u,"
                "\"mean_fill\":%.4f,\"min_entries\":%llu,"
                "\"max_entries\":%llu,\"fill_histogram\":[",
                key, static_cast<unsigned long long>(o.pages),
                static_cast<unsigned long long>(o.entries), o.capacity,
                o.mean_fill(), static_cast<unsigned long long>(o.min_entries),
                static_cast<unsigned long long>(o.max_entries));
  *out += buf;
  for (int i = 0; i < OccupancyStats::kFillBuckets; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(o.fill_histogram[i]));
    *out += buf;
  }
  *out += "]}";
}

}  // namespace

void OccupancyStats::Add(uint64_t count, uint32_t cap) {
  if (pages == 0) {
    min_entries = count;
    max_entries = count;
  } else {
    min_entries = std::min(min_entries, count);
    max_entries = std::max(max_entries, count);
  }
  ++pages;
  entries += count;
  capacity = cap;
  const double fill =
      cap == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(cap);
  int bucket = static_cast<int>(fill * kFillBuckets);
  bucket = std::clamp(bucket, 0, kFillBuckets - 1);
  ++fill_histogram[bucket];
}

double OccupancyStats::mean_fill() const {
  if (pages == 0 || capacity == 0) {
    return 0.0;
  }
  return static_cast<double>(entries) /
         (static_cast<double>(pages) * static_cast<double>(capacity));
}

std::string XRayReport::ToJson() const {
  std::string out = "{";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"structure\":\"%s\",\"distinct_segments\":%llu,"
                "\"stored_entries\":%llu,\"height\":%u,\"pages\":%llu,"
                "\"index_bytes\":%llu,",
                structure.c_str(),
                static_cast<unsigned long long>(distinct_segments),
                static_cast<unsigned long long>(stored_entries), height,
                static_cast<unsigned long long>(pages),
                static_cast<unsigned long long>(index_bytes));
  out += buf;
  AppendOccupancyJson(leaf, "leaf", &out);
  out += ",";
  AppendOccupancyJson(internal, "internal", &out);
  if (has_rtree_geometry) {
    std::snprintf(buf, sizeof(buf),
                  ",\"coverage_ratio\":%.4f,\"overlap_ratio\":%.4f,"
                  "\"dead_space_ratio\":%.4f",
                  coverage_ratio, overlap_ratio, dead_space_ratio);
    out += buf;
  }
  if (has_duplication) {
    std::snprintf(buf, sizeof(buf), ",\"duplication_factor\":%.4f",
                  duplication_factor);
    out += buf;
  }
  if (has_quad_depths) {
    std::snprintf(buf, sizeof(buf),
                  ",\"quad_depths\":{\"leaf_blocks\":%llu,"
                  "\"empty_leaf_blocks\":%llu,\"mean_depth\":%.3f,"
                  "\"histogram\":[",
                  static_cast<unsigned long long>(leaf_blocks),
                  static_cast<unsigned long long>(empty_leaf_blocks),
                  mean_quad_depth);
    out += buf;
    uint32_t top = kMaxQuadDepthSlots;
    while (top > 0 && quad_depth_histogram[top - 1] == 0) {
      --top;
    }
    for (uint32_t i = 0; i < top; ++i) {
      std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                    static_cast<unsigned long long>(quad_depth_histogram[i]));
      out += buf;
    }
    out += "]}";
  }
  out += "}";
  return out;
}

std::string XRayReport::ToPrometheus() const {
  std::string out;
  char buf[256];
  const char* s = structure.c_str();
  auto emit = [&](const char* name, const char* extra, double v) {
    std::snprintf(buf, sizeof(buf), "%s{structure=\"%s\"%s%s} %.6g\n", name,
                  s, extra[0] != '\0' ? "," : "", extra, v);
    out += buf;
  };
  emit("lsdb_xray_segments", "", static_cast<double>(distinct_segments));
  emit("lsdb_xray_stored_entries", "", static_cast<double>(stored_entries));
  emit("lsdb_xray_height", "", static_cast<double>(height));
  emit("lsdb_xray_pages", "", static_cast<double>(pages));
  emit("lsdb_xray_index_bytes", "", static_cast<double>(index_bytes));
  emit("lsdb_xray_pages", "kind=\"leaf\"", static_cast<double>(leaf.pages));
  emit("lsdb_xray_pages", "kind=\"internal\"",
       static_cast<double>(internal.pages));
  emit("lsdb_xray_mean_fill", "kind=\"leaf\"", leaf.mean_fill());
  emit("lsdb_xray_mean_fill", "kind=\"internal\"", internal.mean_fill());
  if (has_rtree_geometry) {
    emit("lsdb_xray_coverage_ratio", "", coverage_ratio);
    emit("lsdb_xray_overlap_ratio", "", overlap_ratio);
    emit("lsdb_xray_dead_space_ratio", "", dead_space_ratio);
  }
  if (has_duplication) {
    emit("lsdb_xray_duplication_factor", "", duplication_factor);
  }
  if (has_quad_depths) {
    emit("lsdb_xray_leaf_blocks", "", static_cast<double>(leaf_blocks));
    emit("lsdb_xray_empty_leaf_blocks", "",
         static_cast<double>(empty_leaf_blocks));
    emit("lsdb_xray_mean_quad_depth", "", mean_quad_depth);
    for (uint32_t i = 0; i < kMaxQuadDepthSlots; ++i) {
      if (quad_depth_histogram[i] == 0) {
        continue;
      }
      std::snprintf(buf, sizeof(buf),
                    "lsdb_xray_quad_depth_blocks{structure=\"%s\","
                    "depth=\"%u\"} %llu\n",
                    s, i,
                    static_cast<unsigned long long>(quad_depth_histogram[i]));
      out += buf;
    }
  }
  return out;
}

Status XRayRStar(RStarTree* tree, XRayReport* out) {
  *out = XRayReport();
  out->structure = "R*";
  out->distinct_segments = tree->size();
  out->height = tree->height();
  out->index_bytes = tree->bytes();
  RTreeWalk walk;
  walk.capacity = tree->node_capacity();
  walk.out = out;
  Status st = tree->VisitNodes(
      [&walk](uint32_t, const RNode& node) { walk.OnNode(node); });
  if (!st.ok()) {
    return st;
  }
  walk.Finish();
  return Status::OK();
}

Status XRayRPlus(RPlusTree* tree, XRayReport* out) {
  *out = XRayReport();
  out->structure = "R+";
  out->distinct_segments = tree->size();
  out->height = tree->height();
  out->index_bytes = tree->bytes();
  RTreeWalk walk;
  walk.capacity = tree->node_capacity();
  walk.out = out;
  Status st = tree->VisitNodes(
      [&walk](uint32_t, const RNode& node) { walk.OnNode(node); });
  if (!st.ok()) {
    return st;
  }
  walk.Finish();
  out->has_duplication = true;
  out->duplication_factor =
      out->distinct_segments == 0
          ? 0.0
          : static_cast<double>(out->stored_entries) /
                static_cast<double>(out->distinct_segments);
  return Status::OK();
}

Status XRayPmr(PmrQuadtree* tree, XRayReport* out) {
  *out = XRayReport();
  out->structure = "PMR";
  out->distinct_segments = tree->size();
  out->stored_entries = tree->tuples();
  out->height = tree->btree()->height();
  out->index_bytes = tree->bytes();
  Status st = tree->btree()->VisitPages(
      [out](uint32_t, bool leaf, uint32_t count, uint32_t capacity) {
        (leaf ? out->leaf : out->internal).Add(count, capacity);
      });
  if (!st.ok()) {
    return st;
  }
  out->pages = out->leaf.pages + out->internal.pages;

  // One ordered pass over the linear quadtree: group tuples by leaf block,
  // count q-edges per block (the sentinel marks an empty block), and build
  // the quadrant-depth distribution of the decomposition.
  const QuadGeometry& geom = tree->geometry();
  bool have_block = false;
  QuadBlock cur;
  uint64_t cur_tuples = 0;
  uint64_t depth_weight = 0;
  auto close_block = [&]() {
    if (!have_block) {
      return;
    }
    ++out->leaf_blocks;
    if (cur_tuples == 0) {
      ++out->empty_leaf_blocks;
    }
    const uint32_t d =
        std::min<uint32_t>(cur.depth, XRayReport::kMaxQuadDepthSlots - 1);
    ++out->quad_depth_histogram[d];
    depth_weight += cur.depth;
  };
  st = tree->btree()->Scan(
      0, ~0ull, [&](uint64_t key, const uint8_t*) {
        QuadBlock b;
        uint32_t segid = 0;
        geom.UnpackKey(key, &b, &segid);
        if (!have_block || !(b == cur)) {
          close_block();
          have_block = true;
          cur = b;
          cur_tuples = 0;
        }
        // 0xffffffff is the empty-block sentinel id (PmrQuadtree).
        if (segid != 0xffffffffu) {
          ++cur_tuples;
        }
        return true;
      });
  if (!st.ok()) {
    return st;
  }
  close_block();
  out->has_quad_depths = true;
  out->mean_quad_depth =
      out->leaf_blocks == 0 ? 0.0
                            : static_cast<double>(depth_weight) /
                                  static_cast<double>(out->leaf_blocks);
  return Status::OK();
}

}  // namespace introspect
}  // namespace lsdb
