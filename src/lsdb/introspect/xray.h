// Structure X-ray: an offline pass over a frozen index (live or opened
// from a *.lsnap snapshot) that explains the paper's end-line numbers with
// structural quality metrics:
//
//   * node occupancy histograms (fill-fraction deciles, per level kind),
//   * R* MBR overlap / coverage / dead-space area ratios — the quantities
//     the mqr-tree line of work (arXiv 1212.1469) uses to argue why
//     searches descend multiple subtrees,
//   * R+ duplication factor (stored leaf copies per distinct segment, the
//     paper's 26-43% storage overhead, measured directly),
//   * PMR quadrant-depth distribution and bucket occupancy,
//   * page-utilization stats for the backing B-tree / node pages.
//
// Reports render as JSON (tooling) and Prometheus exposition (scrape).
// The walk is read-only and streams through the structure's buffer pool,
// so it works unchanged on mmap-backed snapshot sections.

#ifndef LSDB_INTROSPECT_XRAY_H_
#define LSDB_INTROSPECT_XRAY_H_

#include <cstdint>
#include <string>

#include "lsdb/util/status.h"

namespace lsdb {

class RStarTree;
class RPlusTree;
class PmrQuadtree;

namespace introspect {

/// Page-fill distribution for one node kind (leaf or internal).
struct OccupancyStats {
  static constexpr int kFillBuckets = 10;  ///< Deciles of fill fraction.

  uint64_t pages = 0;
  uint64_t entries = 0;
  uint32_t capacity = 0;  ///< Entries per page for this node kind.
  uint64_t min_entries = 0;
  uint64_t max_entries = 0;
  uint64_t fill_histogram[kFillBuckets] = {};

  void Add(uint64_t count, uint32_t cap);
  double mean_fill() const;  ///< entries / (pages * capacity), 0 if empty.
};

struct XRayReport {
  std::string structure;  ///< "R*", "R+", or "PMR".

  uint64_t distinct_segments = 0;
  uint64_t stored_entries = 0;  ///< Leaf entries / q-edge tuples, with copies.
  uint32_t height = 0;
  uint64_t pages = 0;
  uint64_t index_bytes = 0;
  OccupancyStats leaf;
  OccupancyStats internal;

  /// R-tree node geometry, aggregated over all internal nodes (sums over
  /// nodes, normalized by the summed node MBR area so big nodes weigh in
  /// proportion to the space they administer). For the R+-tree the
  /// partition rectangles are disjoint by construction, so overlap_ratio
  /// collapses to ~0 — the number the paper's design trades duplication
  /// for.
  bool has_rtree_geometry = false;
  double coverage_ratio = 0;    ///< sum(child areas) / sum(node MBR areas)
  double overlap_ratio = 0;     ///< sum(pairwise child overlap) / sum(MBR)
  double dead_space_ratio = 0;  ///< sum(MBR - union(children)) / sum(MBR)

  /// R+ only: stored leaf entries per distinct segment (>= 1).
  bool has_duplication = false;
  double duplication_factor = 0;

  /// PMR only: depth distribution of the leaf-block decomposition.
  bool has_quad_depths = false;
  static constexpr uint32_t kMaxQuadDepthSlots = 15;  ///< kMaxQuadDepth + 1.
  uint64_t quad_depth_histogram[kMaxQuadDepthSlots] = {};
  uint64_t leaf_blocks = 0;
  uint64_t empty_leaf_blocks = 0;
  double mean_quad_depth = 0;

  std::string ToJson() const;
  /// Prometheus exposition; every sample is labeled structure="...".
  std::string ToPrometheus() const;
};

/// Walk a frozen (or at least quiescent) index and fill `out`. The walk
/// issues ordinary pool reads; run it before measuring pool behaviour, or
/// accept the extra traffic.
[[nodiscard]] Status XRayRStar(RStarTree* tree, XRayReport* out);
[[nodiscard]] Status XRayRPlus(RPlusTree* tree, XRayReport* out);
[[nodiscard]] Status XRayPmr(PmrQuadtree* tree, XRayReport* out);

}  // namespace introspect
}  // namespace lsdb

#endif  // LSDB_INTROSPECT_XRAY_H_
