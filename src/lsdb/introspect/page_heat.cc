#include "lsdb/introspect/page_heat.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

namespace lsdb {
namespace introspect {

PageHeatMap::PageHeatMap(uint32_t page_count, uint32_t shards)
    : page_count_(page_count), shard_count_(shards == 0 ? 1 : shards) {
  const size_t cells = static_cast<size_t>(shard_count_) * page_count_;
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(cells);
  for (size_t i = 0; i < cells; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  overflow_ = std::make_unique<std::atomic<uint64_t>[]>(shard_count_);
  for (uint32_t i = 0; i < shard_count_; ++i) {
    overflow_[i].store(0, std::memory_order_relaxed);
  }
}

uint32_t PageHeatMap::ShardForThisThread() const {
  const size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<uint32_t>(h % shard_count_);
}

void PageHeatMap::Touch(PageId id) {
  const uint32_t shard = ShardForThisThread();
  if (id >= page_count_) {
    overflow_[shard].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  counts_[static_cast<size_t>(shard) * page_count_ + id].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t PageHeatMap::total() const {
  uint64_t sum = 0;
  const size_t cells = static_cast<size_t>(shard_count_) * page_count_;
  for (size_t i = 0; i < cells; ++i) {
    sum += counts_[i].load(std::memory_order_relaxed);
  }
  return sum + overflow();
}

uint64_t PageHeatMap::overflow() const {
  uint64_t sum = 0;
  for (uint32_t i = 0; i < shard_count_; ++i) {
    sum += overflow_[i].load(std::memory_order_relaxed);
  }
  return sum;
}

std::vector<uint64_t> PageHeatMap::Merge() const {
  std::vector<uint64_t> out(page_count_, 0);
  for (uint32_t s = 0; s < shard_count_; ++s) {
    const size_t base = static_cast<size_t>(s) * page_count_;
    for (uint32_t p = 0; p < page_count_; ++p) {
      out[p] += counts_[base + p].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::vector<PageHeatMap::RankEntry> PageHeatMap::Ranked() const {
  const std::vector<uint64_t> merged = Merge();
  std::vector<RankEntry> out;
  for (uint32_t p = 0; p < merged.size(); ++p) {
    if (merged[p] > 0) {
      out.push_back(RankEntry{p, merged[p]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RankEntry& a, const RankEntry& b) {
              if (a.count != b.count) {
                return a.count > b.count;
              }
              return a.page < b.page;
            });
  return out;
}

std::string PageHeatMap::RankedReport(size_t top_n) const {
  const std::vector<RankEntry> ranked = Ranked();
  uint64_t grand = 0;
  for (const RankEntry& e : ranked) {
    grand += e.count;
  }
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%zu pages touched, %llu accesses (top %zu shown)\n",
                ranked.size(), static_cast<unsigned long long>(grand),
                std::min(top_n, ranked.size()));
  out += buf;
  uint64_t cum = 0;
  for (size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    cum += ranked[i].count;
    std::snprintf(buf, sizeof(buf),
                  "  #%-3zu page %-6u %10llu accesses  cum %5.1f%%\n", i + 1,
                  ranked[i].page,
                  static_cast<unsigned long long>(ranked[i].count),
                  grand == 0 ? 0.0
                             : 100.0 * static_cast<double>(cum) /
                                   static_cast<double>(grand));
    out += buf;
  }
  return out;
}

std::string PageHeatMap::ToJson(size_t top_n) const {
  const std::vector<RankEntry> ranked = Ranked();
  uint64_t grand = 0;
  for (const RankEntry& e : ranked) {
    grand += e.count;
  }
  // Skew: share of all accesses landing on the hottest 10% of touched
  // pages — the number that tells us whether a small cache can win.
  const size_t hot_n = std::max<size_t>(1, ranked.size() / 10);
  uint64_t hot_sum = 0;
  for (size_t i = 0; i < ranked.size() && i < hot_n; ++i) {
    hot_sum += ranked[i].count;
  }
  std::string out;
  char buf[160];
  std::snprintf(
      buf, sizeof(buf),
      "{\"pages\":%u,\"pages_touched\":%zu,\"accesses\":%llu,"
      "\"overflow\":%llu,\"top_decile_share\":%.4f,\"top\":[",
      page_count_, ranked.size(), static_cast<unsigned long long>(grand),
      static_cast<unsigned long long>(overflow()),
      grand == 0 ? 0.0
                 : static_cast<double>(hot_sum) / static_cast<double>(grand));
  out += buf;
  for (size_t i = 0; i < ranked.size() && i < top_n; ++i) {
    std::snprintf(buf, sizeof(buf), "%s{\"page\":%u,\"count\":%llu}",
                  i == 0 ? "" : ",", ranked[i].page,
                  static_cast<unsigned long long>(ranked[i].count));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace introspect
}  // namespace lsdb
