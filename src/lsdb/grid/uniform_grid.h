// Uniform grid spatial index (Franklin's adaptive grid, simplified).
//
// The paper's Section 2 discusses the uniform grid as the fourth bucketing
// approach: "ideal for uniformly distributed data", against which the
// quadtree's adaptivity is motivated. We include it as a baseline: a fixed
// 2^g x 2^g array of cells, each cell holding a chain of bucket pages of
// segment ids; a segment is stored in every cell it intersects (the
// uniform-grid analogue of q-edges, see Figure 1 of the paper).
//
// The cell directory itself is paged (cell id -> head bucket page), so
// disk accesses are accounted the same way as for the other structures.

#ifndef LSDB_GRID_UNIFORM_GRID_H_
#define LSDB_GRID_UNIFORM_GRID_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "lsdb/index/spatial_index.h"
#include "lsdb/seg/segment_table.h"
#include "lsdb/storage/buffer_pool.h"
#include "lsdb/storage/page_file.h"

namespace lsdb {

class UniformGrid : public SpatialIndex {
 public:
  UniformGrid(const IndexOptions& options, PageFile* file,
              SegmentTable* segs);

  /// Creates a fresh grid. Requires an empty page file (superblock at 0).
  Status Init();
  /// Reopens a grid previously built and Flush()ed into this page file.
  Status Open();

  std::string Name() const override { return "grid"; }
  Status Insert(SegmentId id, const Segment& s) override;
  Status Erase(SegmentId id, const Segment& s) override;
  Status WindowQueryEx(const Rect& w, std::vector<SegmentHit>* out) override;
  StatusOr<NearestResult> Nearest(const Point& p) override;
  /// Persists the superblock and all dirty pages.
  Status Flush() override;
  uint64_t bytes() const override {
    return static_cast<uint64_t>(live_pages_) * options_.page_size;
  }
  const MetricCounters& metrics() const override { return metrics_; }
  const BufferPool* pool() const override { return &pool_; }

  uint64_t size() const { return size_; }
  uint32_t cells_per_axis() const { return cells_; }

 private:
  /// Closed region of cell (cx, cy); neighbours share edges.
  Rect CellRegion(uint32_t cx, uint32_t cy) const;
  /// Cell range [cx0..cx1] x [cy0..cy1] whose regions may intersect r.
  void CellRange(const Rect& r, uint32_t* cx0, uint32_t* cy0, uint32_t* cx1,
                 uint32_t* cy1) const;

  StatusOr<PageId> CellHead(uint32_t cell);
  Status SetCellHead(uint32_t cell, PageId head);
  Status AppendToCell(uint32_t cell, SegmentId id);
  Status RemoveFromCell(uint32_t cell, SegmentId id, bool* removed);
  Status ScanCell(uint32_t cell, std::vector<SegmentId>* out);

  IndexOptions options_;
  MetricCounters metrics_;
  BufferPool pool_;
  SegmentTable* segs_;

  uint32_t cells_;       ///< Cells per axis.
  uint32_t cell_shift_;  ///< log2(world / cells).
  uint32_t dir_pages_ = 0;
  uint32_t slots_per_dir_page_;
  uint32_t bucket_capacity_;
  uint32_t live_pages_ = 0;
  uint64_t size_ = 0;
};

}  // namespace lsdb

#endif  // LSDB_GRID_UNIFORM_GRID_H_
