#include "lsdb/grid/uniform_grid.h"

#include "lsdb/storage/superblock.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <queue>

namespace lsdb {

namespace {
constexpr uint32_t kBucketHeader = 8;  // count u16 + pad u16 + next u32

uint16_t GetCount(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void SetCount(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
PageId GetNext(const uint8_t* p) {
  PageId v;
  std::memcpy(&v, p + 4, 4);
  return v;
}
void SetNext(uint8_t* p, PageId v) { std::memcpy(p + 4, &v, 4); }
}  // namespace

UniformGrid::UniformGrid(const IndexOptions& options, PageFile* file,
                         SegmentTable* segs)
    : options_(options),
      pool_(file, options.buffer_frames, &metrics_),
      segs_(segs) {
  assert(options.grid_log2_cells <= options.world_log2);  // NOLINT(lsdb-assert-on-disk): constructor option validation
  cells_ = 1u << options.grid_log2_cells;
  cell_shift_ = options.world_log2 - options.grid_log2_cells;
  slots_per_dir_page_ = options.page_size / 4;
  bucket_capacity_ = (options.page_size - kBucketHeader) / 4;
}

Status UniformGrid::Init() {
  auto sb = pool_.New();
  if (!sb.ok()) return sb.status();
  if (sb->id() != 0) {
    return Status::InvalidArgument("Init() requires a fresh page file");
  }
  sb->Release();
  const uint32_t total_cells = cells_ * cells_;
  dir_pages_ = (total_cells + slots_per_dir_page_ - 1) / slots_per_dir_page_;
  for (uint32_t i = 0; i < dir_pages_; ++i) {
    auto ref = pool_.New();
    if (!ref.ok()) return ref.status();
    ++live_pages_;
    // Initialize every slot to "no bucket".
    uint8_t* p = ref->data();
    for (uint32_t s = 0; s < slots_per_dir_page_; ++s) {
      const PageId none = kInvalidPageId;
      std::memcpy(p + s * 4, &none, 4);
    }
    ref->MarkDirty();
  }
  return Status::OK();
}

Status UniformGrid::Open() {
  auto fields = ReadSuperblock(&pool_, 0, SuperblockKind::kUniformGrid);
  if (!fields.ok()) return fields.status();
  const SuperblockFields& f = *fields;
  if (f[2] != cells_ || f[3] != options_.world_log2) {
    return Status::InvalidArgument("options do not match stored structure");
  }
  live_pages_ = static_cast<uint32_t>(f[0]);
  size_ = f[1];
  const uint32_t total_cells = cells_ * cells_;
  dir_pages_ = (total_cells + slots_per_dir_page_ - 1) / slots_per_dir_page_;
  return Status::OK();
}

Status UniformGrid::Flush() {
  SuperblockFields f{};
  f[0] = live_pages_;
  f[1] = size_;
  f[2] = cells_;
  f[3] = options_.world_log2;
  LSDB_RETURN_IF_ERROR(
      WriteSuperblock(&pool_, 0, SuperblockKind::kUniformGrid, f));
  return pool_.FlushAll();
}

Rect UniformGrid::CellRegion(uint32_t cx, uint32_t cy) const {
  const Coord side = Coord{1} << cell_shift_;
  const Coord x0 = static_cast<Coord>(cx) * side;
  const Coord y0 = static_cast<Coord>(cy) * side;
  // Closed one-past region: adjacent cells share their boundary lines, the
  // same tiling convention as quadtree blocks (QuadGeometry::BlockRegion)
  // and R+ partitions. A segment on a shared line is stored in both cells;
  // a window ending on one scans the cell on either side. CellRange() maps
  // a coordinate to the single cell whose half-open span owns it, so the
  // cell *below* a boundary coordinate is not ranged — that's fine: every
  // point of a segment lies in its owning cell's closed region, so each
  // in-window segment point is found through CellRange(w) regardless.
  return Rect::Of(x0, y0, x0 + side, y0 + side);
}

void UniformGrid::CellRange(const Rect& r, uint32_t* cx0, uint32_t* cy0,
                            uint32_t* cx1, uint32_t* cy1) const {
  const Coord world_max = (Coord{1} << options_.world_log2) - 1;
  auto clamp = [world_max](Coord v) {
    return std::min(std::max<Coord>(v, 0), world_max);
  };
  *cx0 = static_cast<uint32_t>(clamp(r.xmin)) >> cell_shift_;
  *cy0 = static_cast<uint32_t>(clamp(r.ymin)) >> cell_shift_;
  *cx1 = static_cast<uint32_t>(clamp(r.xmax)) >> cell_shift_;
  *cy1 = static_cast<uint32_t>(clamp(r.ymax)) >> cell_shift_;
}

StatusOr<PageId> UniformGrid::CellHead(uint32_t cell) {
  auto ref = pool_.Fetch(1 + cell / slots_per_dir_page_);
  if (!ref.ok()) return ref.status();
  PageId head;
  std::memcpy(&head, ref->data() + (cell % slots_per_dir_page_) * 4, 4);
  return head;
}

Status UniformGrid::SetCellHead(uint32_t cell, PageId head) {
  auto ref = pool_.Fetch(1 + cell / slots_per_dir_page_);
  if (!ref.ok()) return ref.status();
  std::memcpy(ref->data() + (cell % slots_per_dir_page_) * 4, &head, 4);
  ref->MarkDirty();
  return Status::OK();
}

Status UniformGrid::AppendToCell(uint32_t cell, SegmentId id) {
  auto head = CellHead(cell);
  if (!head.ok()) return head.status();
  if (*head != kInvalidPageId) {
    auto ref = pool_.Fetch(*head);
    if (!ref.ok()) return ref.status();
    const uint16_t count = GetCount(ref->data());
    if (count < bucket_capacity_) {
      std::memcpy(ref->data() + kBucketHeader + count * 4, &id, 4);
      SetCount(ref->data(), count + 1);
      ref->MarkDirty();
      return Status::OK();
    }
  }
  // Head missing or full: a fresh page becomes the new head.
  auto ref = pool_.New();
  if (!ref.ok()) return ref.status();
  ++live_pages_;
  SetCount(ref->data(), 1);
  SetNext(ref->data(), *head);
  std::memcpy(ref->data() + kBucketHeader, &id, 4);
  const PageId new_head = ref->id();
  ref->MarkDirty();
  ref->Release();
  return SetCellHead(cell, new_head);
}

Status UniformGrid::RemoveFromCell(uint32_t cell, SegmentId id,
                                   bool* removed) {
  auto head = CellHead(cell);
  if (!head.ok()) return head.status();
  PageId pid = *head;
  while (pid != kInvalidPageId) {
    auto ref = pool_.Fetch(pid);
    if (!ref.ok()) return ref.status();
    uint8_t* p = ref->data();
    const uint16_t count = GetCount(p);
    for (uint16_t i = 0; i < count; ++i) {
      SegmentId v;
      std::memcpy(&v, p + kBucketHeader + i * 4, 4);
      if (v == id) {
        // Swap-remove with the last id on this page.
        std::memcpy(p + kBucketHeader + i * 4,
                    p + kBucketHeader + (count - 1) * 4, 4);
        SetCount(p, count - 1);
        ref->MarkDirty();
        *removed = true;
        return Status::OK();
      }
    }
    pid = GetNext(p);
  }
  return Status::OK();
}

Status UniformGrid::ScanCell(uint32_t cell, std::vector<SegmentId>* out) {
  auto head = CellHead(cell);
  if (!head.ok()) return head.status();
  PageId pid = *head;
  while (pid != kInvalidPageId) {
    auto ref = pool_.Fetch(pid);
    if (!ref.ok()) return ref.status();
    const uint8_t* p = ref->data();
    const uint16_t count = GetCount(p);
    for (uint16_t i = 0; i < count; ++i) {
      SegmentId v;
      std::memcpy(&v, p + kBucketHeader + i * 4, 4);
      out->push_back(v);
    }
    pid = GetNext(p);
  }
  return Status::OK();
}

Status UniformGrid::Insert(SegmentId id, const Segment& s) {
  LSDB_RETURN_IF_ERROR(CheckMutable());
  uint32_t cx0, cy0, cx1, cy1;
  CellRange(s.Mbr(), &cx0, &cy0, &cx1, &cy1);
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      ++CounterSink(metrics_).bucket_comps;
      if (!s.IntersectsRect(CellRegion(cx, cy))) continue;
      LSDB_RETURN_IF_ERROR(AppendToCell(cy * cells_ + cx, id));
    }
  }
  ++size_;
  return Status::OK();
}

Status UniformGrid::Erase(SegmentId id, const Segment& s) {
  LSDB_RETURN_IF_ERROR(CheckMutable());
  uint32_t cx0, cy0, cx1, cy1;
  CellRange(s.Mbr(), &cx0, &cy0, &cx1, &cy1);
  bool removed_any = false;
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      ++CounterSink(metrics_).bucket_comps;
      if (!s.IntersectsRect(CellRegion(cx, cy))) continue;
      bool removed = false;
      LSDB_RETURN_IF_ERROR(RemoveFromCell(cy * cells_ + cx, id, &removed));
      removed_any |= removed;
    }
  }
  if (!removed_any) return Status::NotFound("segment not in grid");
  --size_;
  return Status::OK();
}

Status UniformGrid::WindowQueryEx(const Rect& w,
                                  std::vector<SegmentHit>* out) {
  uint32_t cx0, cy0, cx1, cy1;
  CellRange(w, &cx0, &cy0, &cx1, &cy1);
  std::unordered_set<SegmentId> seen;
  for (uint32_t cy = cy0; cy <= cy1; ++cy) {
    for (uint32_t cx = cx0; cx <= cx1; ++cx) {
      ++CounterSink(metrics_).bucket_comps;
      if (!CellRegion(cx, cy).Intersects(w)) continue;
      std::vector<SegmentId> ids;
      LSDB_RETURN_IF_ERROR(ScanCell(cy * cells_ + cx, &ids));
      for (SegmentId id : ids) {
        if (!seen.insert(id).second) continue;
        Segment s;
        LSDB_RETURN_IF_ERROR(segs_->Get(id, &s));
        ++CounterSink(metrics_).segment_comps;
        if (s.IntersectsRect(w)) out->push_back(SegmentHit{id, s});
      }
    }
  }
  return Status::OK();
}

StatusOr<NearestResult> UniformGrid::Nearest(const Point& p) {
  if (size_ == 0) return Status::NotFound("empty index");
  // Expanding-ring search: visit cells in rings of increasing Chebyshev
  // radius around p's cell; stop once the nearest unvisited ring cannot
  // beat the best exact distance found so far.
  const uint32_t pcx =
      static_cast<uint32_t>(std::min<Coord>(
          std::max<Coord>(p.x, 0), (Coord{1} << options_.world_log2) - 1)) >>
      cell_shift_;
  const uint32_t pcy =
      static_cast<uint32_t>(std::min<Coord>(
          std::max<Coord>(p.y, 0), (Coord{1} << options_.world_log2) - 1)) >>
      cell_shift_;
  std::unordered_set<SegmentId> refined;
  NearestResult best;
  bool have_best = false;
  const Coord side = Coord{1} << cell_shift_;
  for (uint32_t radius = 0; radius < cells_; ++radius) {
    // Minimum possible distance from p to any cell in this ring.
    if (have_best && radius > 0) {
      const double ring_min =
          static_cast<double>(radius - 1) * static_cast<double>(side);
      if (ring_min * ring_min > best.squared_distance) break;
    }
    bool ring_in_world = false;
    auto visit = [&](int64_t cx, int64_t cy) -> Status {
      if (cx < 0 || cy < 0 || cx >= cells_ || cy >= cells_) {
        return Status::OK();
      }
      ring_in_world = true;
      ++CounterSink(metrics_).bucket_comps;
      std::vector<SegmentId> ids;
      LSDB_RETURN_IF_ERROR(ScanCell(
          static_cast<uint32_t>(cy) * cells_ + static_cast<uint32_t>(cx),
          &ids));
      for (SegmentId id : ids) {
        if (!refined.insert(id).second) continue;
        Segment s;
        LSDB_RETURN_IF_ERROR(segs_->Get(id, &s));
        ++CounterSink(metrics_).segment_comps;
        const double d = s.SquaredDistanceTo(p);
        if (!have_best || d < best.squared_distance) {
          have_best = true;
          best = NearestResult{id, d, s};
        }
      }
      return Status::OK();
    };
    const int64_t r = radius;
    if (r == 0) {
      LSDB_RETURN_IF_ERROR(visit(pcx, pcy));
    } else {
      for (int64_t dx = -r; dx <= r; ++dx) {
        LSDB_RETURN_IF_ERROR(visit(pcx + dx, static_cast<int64_t>(pcy) - r));
        LSDB_RETURN_IF_ERROR(visit(pcx + dx, static_cast<int64_t>(pcy) + r));
      }
      for (int64_t dy = -r + 1; dy <= r - 1; ++dy) {
        LSDB_RETURN_IF_ERROR(visit(static_cast<int64_t>(pcx) - r, pcy + dy));
        LSDB_RETURN_IF_ERROR(visit(static_cast<int64_t>(pcx) + r, pcy + dy));
      }
    }
    if (!ring_in_world && radius > 0 && have_best) break;
  }
  if (!have_best) return Status::NotFound("empty index");
  return best;
}

}  // namespace lsdb
