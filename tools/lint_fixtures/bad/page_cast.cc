// lsdb-lint-pretend-path: src/lsdb/rtree/rstar_tree.cc
// Golden-bad fixture: raw page-byte casts outside storage/ and node-IO TUs.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <cstdint>

namespace lsdb {

uint32_t Demo(const uint8_t* page) {
  const uint32_t* words = reinterpret_cast<const uint32_t*>(page);
  const char* c = (const char*)page;  // C-style byte cast, same problem
  return words[0] + static_cast<uint32_t>(c[1]);
}

}  // namespace lsdb
