// lsdb-lint-pretend-path: src/lsdb/storage/buffer_pool.cc
// Golden-bad fixture: thread-safety-analysis escape hatches with no
// justification. Turning the analysis off for a function is sometimes
// necessary, but a bare escape reads as "trust me" — the rule demands a
// `tsa-escape: <reason>` comment on the line or directly above it.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include "lsdb/util/thread_annotations.h"

namespace lsdb {

class BadEscapes {
 public:
  // This comment block explains nothing about the analysis.
  void Mystery() LSDB_NO_THREAD_SAFETY_ANALYSIS;

  void AlsoMystery() LSDB_NO_THREAD_SAFETY_ANALYSIS { counter_++; }

 private:
  int counter_ = 0;
};

}  // namespace lsdb
