// lsdb-lint-pretend-path: src/lsdb/rtree/rstar_tree.cc
// Golden-bad fixture: MetricCounters fields mutated without CounterSink,
// which would make the paper metrics invisible to ScopedCounterSink.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include "lsdb/util/counters.h"

namespace lsdb {

void Demo(MetricCounters* metrics) {
  ++metrics->bbox_comps;        // bypasses the thread-local sink
  metrics->disk_reads += 2;     // same, compound assignment
  metrics->segment_comps--;     // decrements bypass the sink as well
}

}  // namespace lsdb
