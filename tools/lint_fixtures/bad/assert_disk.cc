// lsdb-lint-pretend-path: src/lsdb/btree/btree.cc
// Golden-bad fixture: assert() on disk-loaded data in a read-path TU with
// no NOLINT justification. Corrupt pages must surface as typed Corruption.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <cassert>
#include <cstdint>

namespace lsdb {

void Demo(const uint8_t* page, uint16_t capacity) {
  const uint16_t count = static_cast<uint16_t>(page[2] | (page[3] << 8));
  assert(count <= capacity);  // aborts (or vanishes) on a corrupt page
}

}  // namespace lsdb
