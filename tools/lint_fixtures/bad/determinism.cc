// lsdb-lint-pretend-path: src/lsdb/harness/experiment.cc
// Golden-bad fixture: nondeterminism sources inside src/lsdb (outside
// obs/). Paper experiments must replay bit-exact from a seed.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <chrono>
#include <cstdlib>
#include <ctime>

namespace lsdb {

int Demo() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));  // seeded from wall clock
  const auto now = std::chrono::system_clock::now();      // wall clock
  return std::rand() + static_cast<int>(now.time_since_epoch().count());
}

}  // namespace lsdb
