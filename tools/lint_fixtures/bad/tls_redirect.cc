// lsdb-lint-pretend-path: src/lsdb/service/query_service.cc
// Golden-bad fixture: TLS redirect guards held in non-scoped storage.
// Each guard saves a thread_local slot in its constructor and restores
// it in its destructor; anything that decouples destruction from block
// scope (heap, static, containers) corrupts the LIFO save/restore chain
// for every later frame on the thread.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <memory>
#include <vector>

#include "lsdb/service/cancel.h"
#include "lsdb/util/counters.h"

namespace lsdb {

struct BadHolder {
  // Heap storage: destructor order is whatever the owner decides.
  std::unique_ptr<ScopedCounterSink> sink =
      std::make_unique<ScopedCounterSink>(nullptr);
  ScopedQueryProfile* profile = new ScopedQueryProfile(nullptr);
};

void BadStatic() {
  // Static storage: restored at process exit, on some other thread.
  static ScopedCancelScope scope(nullptr);
  thread_local ScopedCounterSink sink(nullptr);
  std::vector<ScopedQueryProfile> profiles;
}

}  // namespace lsdb
