// lsdb-lint-pretend-path: src/lsdb/service/admission.cc
// Golden-bad fixture: bare std:: synchronization primitives inside the
// library tree. None of these participate in the Clang thread-safety
// analysis or the runtime lock-order verifier, so a deadlock through
// them is invisible to every gate.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace lsdb {

class BadQueue {
 public:
  void Push(int v) {
    std::lock_guard<std::mutex> lk(mu_);
    last_ = v;
    cv_.notify_one();
  }

  int Peek() {
    std::shared_lock<std::shared_mutex> lk(rw_);
    return last_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_mutex rw_;
  std::recursive_mutex nested_;
  int last_ = 0;
};

void Transfer(std::mutex& a, std::mutex& b) {
  std::scoped_lock lk(a, b);
}

}  // namespace lsdb
