// lsdb-lint-pretend-path: src/lsdb/service/worker_pool.cc
// Golden-bad fixture: condition-variable waits that can wedge a serving
// thread. Plain wait()/Wait()/WaitOnce() have no deadline at all; the
// 2-arg timed forms skip the predicate and silently tolerate lost
// wakeups. The std:: spellings additionally trip lsdb-raw-mutex.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "lsdb/util/mutex.h"

namespace lsdb {

void Demo(std::condition_variable& cv, std::mutex& mu, bool& ready) {
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk);  // no deadline, no predicate: blocks forever on a miss
  cv.wait(lk, [&] { return ready; });  // predicate but still no deadline
  cv.wait_for(lk, std::chrono::milliseconds(10));  // no predicate
  cv.wait_until(lk,
                std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(10));  // no predicate
}

void DemoWrapped(CondVar& cv, Mutex& mu, bool& ready) {
  MutexLock lk(mu);
  cv.Wait(mu, [&] { return ready; });  // predicate but still no deadline
  cv.WaitOnce(mu);                     // single unbounded park
  cv.WaitFor(mu, std::chrono::milliseconds(10));  // no predicate
  cv.WaitUntil(mu,
               std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(10));  // no predicate
}

}  // namespace lsdb
