// lsdb-lint-pretend-path: src/lsdb/rtree/rstar_tree.cc
// Golden-bad fixture: raw vector intrinsics and a vendor SIMD header in an
// index TU. Vector code belongs in src/lsdb/simd/, where ISA dispatch,
// padding-lane semantics, and the scalar-oracle equivalence live; an
// intrinsic inlined into a descent loop dodges all three.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <immintrin.h>

#include "lsdb/geom/rect.h"

namespace lsdb {

int Demo(const int* xmin, const Rect& w) {
  __m128i lanes = _mm_loadu_si128(nullptr);          // x86 intrinsic
  __m128i wmax = _mm_set1_epi32(w.xmax);
  __m128i bad = _mm_cmpgt_epi32(lanes, wmax);
  (void)xmin;
  // NEON spelling of the same shortcut is equally banned.
  // int32x4_t nlanes = vld1q_s32(xmin);
  return _mm_movemask_ps(_mm_castsi128_ps(bad));
}

}  // namespace lsdb
