// lsdb-lint-pretend-path: src/lsdb/rtree/rstar_tree.cc
// Golden-bad fixture: query-path profiling hooks called bare inside a
// descent loop. Each call runs unconditionally — counter maintenance on
// the hot path even when introspection is off — instead of compiling to a
// thread-local load plus an untaken branch via LSDB_INTROSPECT.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include "lsdb/introspect/profiler.h"

namespace lsdb {

void Demo(introspect::QueryProfile* prof, uint32_t depth) {
  prof->OnNode(depth, true, 10, 4, 0);  // bare hook: always executes
  prof->BeginBucket(depth);             // same for the bucket pair
  prof->OnResult(1);
  prof->EndBucket();
  // Reaching for the thread-local target directly re-implements the macro
  // without its null test being optimizer-friendly, and is flagged even
  // when a null check is hand-written around it.
  introspect::QueryProfile* p = introspect::ThreadProfile();
  if (p != nullptr) p->OnBtreeNode(depth, true, 8, 2);
}

}  // namespace lsdb
