// Fixture: a typed-pointer cast straight into mapped snapshot memory in a
// serving TU must trip lsdb-unchecked-mmap-cast — the cast bypasses the
// per-byte codecs and with them verify-on-first-touch.
// lsdb-lint-pretend-path: src/lsdb/storage/buffer_pool.cc
#include <cstdint>

struct MappedPage {
  const uint8_t* data;
};

uint32_t ReadNodeCount(const MappedPage& mapped) {
  return *reinterpret_cast<const uint32_t*>(mapped.data + 8);
}
