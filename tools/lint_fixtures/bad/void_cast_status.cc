// lsdb-lint-pretend-path: src/lsdb/demo/void_cast_status.cc
// Golden-bad fixture: cast-to-void evasion of [[nodiscard]] Status.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include "lsdb/btree/btree.h"

namespace lsdb {

void Demo(BTree* tree, BufferPool* pool) {
  (void)tree->Init();                     // silences the compiler, hides a bug
  static_cast<void>(pool->Flush(1));      // same evasion, C++ spelling
  (void)unused_parameter;                 // plain value: NOT a finding
}

}  // namespace lsdb
