// lsdb-lint-pretend-path: src/lsdb/demo/ignored_status.cc
// Golden-bad fixture: bare statements that drop a Status/StatusOr result.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include "lsdb/btree/btree.h"

namespace lsdb {

void Demo(BTree* tree, BufferPool* pool) {
  tree->Init();       // dropped Status
  pool->FlushAll();   // dropped Status
  tree->Insert(1, nullptr).status();  // chained discard is still a discard
}

}  // namespace lsdb
