// lsdb-lint-pretend-path: src/lsdb/simd/simd.cc
// Golden-good fixture: raw intrinsics and vendor headers are the point of
// the simd/ layer — inside src/lsdb/simd/ the lsdb-raw-intrinsic rule must
// stay silent. Index TUs consume the kernels via simd/simd.h instead.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <immintrin.h>

namespace lsdb::simd {

unsigned Demo(const int* xmin) {
  __m128i lanes = _mm_loadu_si128(nullptr);
  __m128i zero = _mm_set1_epi32(0);
  __m128i bad = _mm_cmpgt_epi32(lanes, zero);
  (void)xmin;  // vld1q_s32(xmin) on aarch64 — also sanctioned here
  return static_cast<unsigned>(
      _mm_movemask_ps(_mm_castsi128_ps(bad)));
}

}  // namespace lsdb::simd
