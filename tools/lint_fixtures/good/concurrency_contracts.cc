// lsdb-lint-pretend-path: src/lsdb/service/admission.cc
// Golden-good fixture: the sanctioned concurrency spellings. Annotated
// lsdb::Mutex with MutexLock, a block-scoped TLS redirect guard, and a
// justified thread-safety-analysis escape. Must lint clean except for
// the justified-escape count on stderr (which is not a finding).
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include "lsdb/util/counters.h"
#include "lsdb/util/mutex.h"
#include "lsdb/util/thread_annotations.h"

namespace lsdb {

class GoodQueue {
 public:
  void Push(int v) LSDB_EXCLUDES(mu_) {
    MutexLock lk(mu_);
    last_ = v;
  }

  // tsa-escape: invoked only from the owning thread before any worker
  // starts, so no lock is needed and the analysis cannot prove it.
  int PeekPreStart() LSDB_NO_THREAD_SAFETY_ANALYSIS { return last_; }

 private:
  Mutex mu_{"GoodQueue.mu"};
  int last_ LSDB_GUARDED_BY(mu_) = 0;
};

void GoodRedirect(MetricCounters* local) {
  // Block-scoped stack object: destruction order mirrors scope order.
  ScopedCounterSink sink(local);
}

}  // namespace lsdb
