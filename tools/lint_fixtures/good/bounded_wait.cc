// lsdb-lint-pretend-path: src/lsdb/storage/buffer_pool.cc
// Golden-good fixture: the sanctioned spellings of serving-path waits.
// Must lint clean (for lsdb-unbounded-wait; the pretend path is a
// read-path TU, so no asserts or stray casts here either).
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace lsdb {

bool Demo(std::condition_variable& cv, std::mutex& mu, bool& ready) {
  std::unique_lock<std::mutex> lk(mu);
  // Predicate + deadline, including a wrapped argument list: bounded and
  // lost-wakeup-safe.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  const bool got = cv.wait_until(lk, deadline, [&] { return ready; });
  cv.wait_until(
      lk,
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5),
      [&] { return ready; });
  // A deliberately unbounded wait carries its justification:
  // NOLINTNEXTLINE(lsdb-unbounded-wait): idle worker park; no deadline applies
  cv.wait(lk, [&] { return ready; });
  return got;
}

}  // namespace lsdb
