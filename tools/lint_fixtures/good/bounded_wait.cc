// lsdb-lint-pretend-path: src/lsdb/storage/buffer_pool.cc
// Golden-good fixture: the sanctioned spellings of serving-path waits,
// using the annotated lsdb::Mutex / lsdb::CondVar wrappers (a raw
// std::condition_variable here would trip lsdb-raw-mutex). Must lint
// clean; the pretend path is a read-path TU, so no asserts or stray
// casts here either.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <chrono>

#include "lsdb/util/mutex.h"

namespace lsdb {

bool Demo(CondVar& cv, Mutex& mu, bool& ready) {
  MutexLock lk(mu);
  // Predicate + deadline, including a wrapped argument list: bounded and
  // lost-wakeup-safe.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  const bool got = cv.WaitUntil(mu, deadline, [&] { return ready; });
  cv.WaitUntil(
      mu,
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5),
      [&] { return ready; });
  // A deliberately unbounded wait carries its justification:
  // NOLINTNEXTLINE(lsdb-unbounded-wait): idle worker park; no deadline applies
  cv.Wait(mu, [&] { return ready; });
  return got;
}

}  // namespace lsdb
