// Fixture: cast-free per-byte decoding of mapped bytes is clean under
// lsdb-unchecked-mmap-cast even in a TU outside the mmap/snapshot
// allowlist — this is the pattern the rule steers consumers toward.
// lsdb-lint-pretend-path: src/lsdb/service/query_service.cc
#include <cstdint>

struct MappedPage {
  const uint8_t* data;
};

uint32_t ReadNodeCount(const MappedPage& mapped) {
  const uint8_t* p = mapped.data + 8;
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 |
         static_cast<uint32_t>(p[3]) << 24;
}
