// lsdb-lint-pretend-path: src/lsdb/rtree/rstar_tree.cc
// Golden-good fixture: the sanctioned spelling of everything the bad
// fixtures get flagged for. Must lint clean.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <cassert>
#include <chrono>

#include "lsdb/btree/btree.h"
#include "lsdb/introspect/profiler.h"
#include "lsdb/util/counters.h"

namespace lsdb {

Status Demo(BTree* tree, MetricCounters& metrics_, size_t n) {
  LSDB_RETURN_IF_ERROR(tree->Init());    // propagated
  Status probe = tree->Insert(1, nullptr);
  if (!probe.ok()) return probe;         // handled
  tree->Insert(1, nullptr).IgnoreError();  // audited, explicit discard
  ++CounterSink(metrics_).bbox_comps;    // redirectable metric increment
  // In-memory invariant on the caller's argument, not on disk bytes.
  assert(n > 0);  // NOLINT(lsdb-assert-on-disk): caller contract, not disk data
  const auto t0 = std::chrono::steady_clock::now();  // monotonic: allowed
  (void)t0;
  // Profiling hooks in a descent TU: the macro is the sanctioned spelling
  // (one TLS load + untaken branch when introspection is off), including
  // arguments that wrap onto a continuation line.
  LSDB_INTROSPECT(OnNode(0, true, n, 1, 1));
  LSDB_INTROSPECT(OnBtreeNode(1, true,
                              n, 1));
  return Status::OK();
}

}  // namespace lsdb
