// lsdb-lint-pretend-path: src/lsdb/storage/page_file.cc
// Golden-good fixture: the storage layer itself may reinterpret raw page
// bytes — decoding lives next to the checksum and corruption handling.
// Must lint clean.
// Not compiled — scanned by lsdb_lint in the lint_fixture_* ctests.

#include <cstdint>

namespace lsdb {

uint32_t Demo(const uint8_t* page) {
  const uint32_t* words = reinterpret_cast<const uint32_t*>(page);
  return words[0];
}

}  // namespace lsdb
