// lsdb_snapshot: create, verify, and inspect single-file snapshots.
//
//   lsdb_snapshot create <county> <out.lsnap>   build a county's service
//                                               (bulk loaders) and freeze
//                                               it into a snapshot
//   lsdb_snapshot verify <file.lsnap>           validate header/footer and
//                                               recompute every section
//                                               CRC; nonzero exit on any
//                                               mismatch
//   lsdb_snapshot inspect <file.lsnap>          dump the header and offset
//                                               table
//
// verify/inspect never trust unvalidated bytes: structural damage surfaces
// as typed Corruption from SnapshotReader::Open, and all output is derived
// from decoded (bounds-checked) fields.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "lsdb/data/county_generator.h"
#include "lsdb/service/query_service.h"
#include "lsdb/snapshot/snapshot_format.h"
#include "lsdb/snapshot/snapshot_reader.h"

using namespace lsdb;  // NOLINT

namespace {

const char* SectionKindName(uint32_t kind) {
  switch (static_cast<snapshot::SectionKind>(kind)) {
    case snapshot::SectionKind::kSegments:
      return "segments";
    case snapshot::SectionKind::kRStar:
      return "R*-tree";
    case snapshot::SectionKind::kRPlus:
      return "R+-tree";
    case snapshot::SectionKind::kPmr:
      return "PMR quadtree";
  }
  return "unknown";
}

int Usage() {
  std::fprintf(stderr,
               "usage: lsdb_snapshot create <county> <out.lsnap>\n"
               "       lsdb_snapshot verify <file.lsnap>\n"
               "       lsdb_snapshot inspect <file.lsnap>\n");
  return 2;
}

int Create(const std::string& county, const std::string& out) {
  PolygonalMap map;
  for (const CountyProfile& p : MarylandProfiles()) {
    if (p.name == county) map = GenerateCounty(p, /*world_log2=*/14);
  }
  if (map.segments.empty()) {
    std::fprintf(stderr, "unknown county %s (see MarylandProfiles)\n",
                 county.c_str());
    return 1;
  }
  std::printf("building %s county (%zu segments)...\n", county.c_str(),
              map.segments.size());
  ServiceOptions opt;
  opt.bulk_build = true;
  opt.num_threads = 1;  // only the build runs; no serving traffic
  auto svc = QueryService::Build(map, opt);
  if (!svc.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 svc.status().ToString().c_str());
    return 1;
  }
  const Status st = (*svc)->WriteSnapshot(out);
  if (!st.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int Verify(const std::string& path) {
  auto reader = snapshot::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "OPEN FAIL  %s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("header/offset-table/footer: OK (version %u, %u sections)\n",
              (*reader)->header().version,
              (*reader)->header().section_count);
  bool all_ok = true;
  const auto& sections = (*reader)->sections();
  for (size_t i = 0; i < sections.size(); ++i) {
    const snapshot::SectionEntry& e = sections[i];
    const Status st = (*reader)->VerifySection(i);
    std::printf("section %zu  %-12s  %8" PRIu32 " pages  crc %08" PRIx32
                "  %s\n",
                i, SectionKindName(e.kind), e.page_count, e.crc,
                st.ok() ? "OK" : st.ToString().c_str());
    if (!st.ok()) all_ok = false;
  }
  if (!all_ok) {
    std::fprintf(stderr, "VERIFY FAIL  %s\n", path.c_str());
    return 1;
  }
  std::printf("all sections verified: %s\n", path.c_str());
  return 0;
}

int Inspect(const std::string& path) {
  auto reader = snapshot::SnapshotReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  const snapshot::Header& h = (*reader)->header();
  std::printf("%s\n", path.c_str());
  std::printf("  magic            LSNP (version %u)\n", h.version);
  std::printf("  page size        %u bytes (+%u-byte CRC trailer/page)\n",
              h.page_size, kPageTrailerSize);
  std::printf("  segments         %" PRIu64 "\n", h.segment_count);
  std::printf("  world extent     2^%u\n", h.world_log2);
  std::printf("  PMR threshold    %u (max depth %u, bboxes %s)\n",
              h.pmr_split_threshold, h.pmr_max_depth,
              h.pmr_store_bboxes ? "stored" : "recomputed");
  std::printf("  header crc       %08" PRIx32 "\n", h.header_crc);
  std::printf("  sections         %u\n", h.section_count);
  for (size_t i = 0; i < (*reader)->sections().size(); ++i) {
    const snapshot::SectionEntry& e = (*reader)->sections()[i];
    std::printf("    [%zu] %-12s offset %10" PRIu64 "  %8" PRIu32
                " pages  %10" PRIu64 " bytes  crc %08" PRIx32 "\n",
                i, SectionKindName(e.kind), e.offset, e.page_count,
                e.length, e.crc);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "create") {
    if (argc != 4) return Usage();
    return Create(argv[2], argv[3]);
  }
  if (cmd == "verify") return Verify(argv[2]);
  if (cmd == "inspect") return Inspect(argv[2]);
  return Usage();
}
