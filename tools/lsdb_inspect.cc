// lsdb_inspect: explain a frozen index set from a single-file snapshot.
//
//   lsdb_inspect xray <file.lsnap> [--prometheus]
//       Walk all three structures and print structural quality metrics —
//       occupancy histograms, R* MBR overlap/coverage/dead space, R+
//       duplication factor, PMR quadrant-depth distribution — as a JSON
//       array (default) or Prometheus exposition text.
//
//   lsdb_inspect profile <file.lsnap> [--queries N] [--threads T]
//       Serve a deterministic mixed workload generated from the snapshot's
//       own segments with query-path profiling on, and print the per
//       structure x kind descent profiles (nodes/query, false-positive
//       leaf and bucket read rates, prune rates, per-level fanout).
//
//   lsdb_inspect heatmap <file.lsnap> [--queries N] [--threads T]
//                        [--top N] [--svg prefix]
//       Same workload with per-page heat counters attached; prints the
//       rank-ordered hot-page report per structure and optionally writes
//       one SVG tile heatmap per structure (prefix + "_R*.svg", ...).
//
// All subcommands open the snapshot zero-copy and never mutate it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lsdb/introspect/page_heat.h"
#include "lsdb/introspect/profiler.h"
#include "lsdb/introspect/xray.h"
#include "lsdb/service/query_service.h"
#include "lsdb/util/random.h"
#include "lsdb/viz/svg.h"

using namespace lsdb;  // NOLINT

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: lsdb_inspect xray <file.lsnap> [--prometheus]\n"
      "       lsdb_inspect profile <file.lsnap> [--queries N] [--threads T]\n"
      "       lsdb_inspect heatmap <file.lsnap> [--queries N] [--threads T]"
      " [--top N] [--svg prefix]\n");
  return 2;
}

StatusOr<std::unique_ptr<QueryService>> OpenSnapshot(const std::string& path,
                                                     uint32_t threads) {
  ServiceOptions opt;
  opt.num_threads = threads;
  return QueryService::OpenFromSnapshot(path, opt, /*zero_copy=*/true);
}

Status XRayOne(QueryService* svc, ServedIndex which,
               introspect::XRayReport* out) {
  switch (which) {
    case ServedIndex::kRStar:
      return introspect::XRayRStar(svc->rstar(), out);
    case ServedIndex::kRPlus:
      return introspect::XRayRPlus(svc->rplus(), out);
    case ServedIndex::kPmr:
      return introspect::XRayPmr(svc->pmr(), out);
  }
  return Status::InvalidArgument("unknown index");
}

/// Deterministic mixed workload drawn from the snapshot's own segment
/// table: point/incident queries at stored endpoints, windows and nearest
/// probes over the world extent. The same seed always produces the same
/// batch, so reports are comparable across runs.
StatusOr<std::vector<QueryRequest>> SnapshotWorkload(QueryService* svc,
                                                     size_t n) {
  Rng rng(2026);
  std::vector<QueryRequest> batch;
  batch.reserve(n);
  const uint32_t seg_count = svc->segment_count();
  if (seg_count == 0) return Status::InvalidArgument("empty snapshot");
  for (size_t i = 0; i < n; ++i) {
    Segment s;
    LSDB_RETURN_IF_ERROR(
        svc->segment_table()->Get(rng.Uniform(seg_count), &s));
    switch (i % 4) {
      case 0:
        batch.push_back(QueryRequest::PointQ(s.a));
        break;
      case 1: {
        const Coord x = static_cast<Coord>(rng.Uniform(15500));
        const Coord y = static_cast<Coord>(rng.Uniform(15500));
        batch.push_back(
            QueryRequest::WindowQ(Rect::Of(x, y, x + 512, y + 512)));
        break;
      }
      case 2:
        batch.push_back(QueryRequest::NearestQ(
            Point{static_cast<Coord>(rng.Uniform(16384)),
                  static_cast<Coord>(rng.Uniform(16384))}));
        break;
      default:
        batch.push_back(QueryRequest::IncidentQ(s.b));
        break;
    }
  }
  return batch;
}

int RunXray(const std::string& path, bool prometheus) {
  auto svc = OpenSnapshot(path, 1);
  if (!svc.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 svc.status().ToString().c_str());
    return 1;
  }
  std::string json = "[";
  for (ServedIndex which : kAllServedIndexes) {
    introspect::XRayReport xr;
    const Status st = XRayOne(svc->get(), which, &xr);
    if (!st.ok()) {
      std::fprintf(stderr, "x-ray of %s failed: %s\n",
                   ServedIndexName(which), st.ToString().c_str());
      return 1;
    }
    if (prometheus) {
      std::fputs(xr.ToPrometheus().c_str(), stdout);
    } else {
      if (json.size() > 1) json += ",";
      json += xr.ToJson();
    }
  }
  if (!prometheus) {
    json += "]\n";
    std::fputs(json.c_str(), stdout);
  }
  return 0;
}

int RunProfile(const std::string& path, size_t queries, uint32_t threads) {
  auto svc = OpenSnapshot(path, threads);
  if (!svc.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 svc.status().ToString().c_str());
    return 1;
  }
  (*svc)->set_introspection(true);
  auto batch = SnapshotWorkload(svc->get(), queries);
  if (!batch.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  std::string json = "[";
  for (ServedIndex which : kAllServedIndexes) {
    auto res = (*svc)->ExecuteBatch(which, *batch);
    if (!res.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    for (QueryType type : kAllQueryTypes) {
      const introspect::ProfileAccumulator::Summary s =
          (*svc)->profile_summary(which, type);
      if (json.size() > 1) json += ",";
      json += "{\"index\":\"" + std::string(ServedIndexName(which)) +
              "\",\"kind\":\"" + QueryTypeName(type) + "\"," +
              s.ToJson().substr(1);
    }
  }
  json += "]\n";
  std::fputs(json.c_str(), stdout);
  return 0;
}

int RunHeatmap(const std::string& path, size_t queries, uint32_t threads,
               size_t top_n, const std::string& svg_prefix) {
  auto svc = OpenSnapshot(path, threads);
  if (!svc.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 svc.status().ToString().c_str());
    return 1;
  }
  (*svc)->EnablePageHeat();
  auto batch = SnapshotWorkload(svc->get(), queries);
  if (!batch.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 batch.status().ToString().c_str());
    return 1;
  }
  for (ServedIndex which : kAllServedIndexes) {
    auto res = (*svc)->ExecuteBatch(which, *batch);
    if (!res.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    const introspect::PageHeatMap* heat = (*svc)->page_heat(which);
    std::printf("== %s ==\n%s", ServedIndexName(which),
                heat->RankedReport(top_n).c_str());
    if (!svg_prefix.empty()) {
      const std::string out = svg_prefix + "_" +
                              std::string(ServedIndexName(which)) + ".svg";
      const Status st = WriteHeatmapSvg(heat->Merge(), out);
      if (!st.ok()) {
        std::fprintf(stderr, "svg write failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", out.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];

  bool prometheus = false;
  size_t queries = 4000;
  uint32_t threads = 4;
  size_t top_n = 10;
  std::string svg_prefix;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--prometheus") {
      prometheus = true;
    } else if (a == "--queries" && i + 1 < argc) {
      queries = static_cast<size_t>(atoi(argv[++i]));
    } else if (a == "--threads" && i + 1 < argc) {
      threads = static_cast<uint32_t>(atoi(argv[++i]));
    } else if (a == "--top" && i + 1 < argc) {
      top_n = static_cast<size_t>(atoi(argv[++i]));
    } else if (a == "--svg" && i + 1 < argc) {
      svg_prefix = argv[++i];
    } else {
      return Usage();
    }
  }

  if (cmd == "xray") return RunXray(path, prometheus);
  if (cmd == "profile") return RunProfile(path, queries, threads);
  if (cmd == "heatmap") {
    return RunHeatmap(path, queries, threads, top_n, svg_prefix);
  }
  return Usage();
}
