// lsdb_lint: domain-specific static checks for the lsdb tree.
//
// Complements clang-tidy (which may be absent from a minimal toolchain —
// this tool builds with nothing beyond the standard library) with twelve
// project rules that generic linters cannot express:
//
//   lsdb-ignored-status    every Status/StatusOr return must be consumed.
//                          The compiler enforces bare discards via
//                          [[nodiscard]]; this rule additionally rejects
//                          cast-to-void evasion and bare statement calls,
//                          since (void) silences the compiler without
//                          recording intent. IgnoreError() is the one
//                          sanctioned discard.
//   lsdb-page-cast         no reinterpret_cast / C-style cast of raw page
//                          bytes outside storage/ and the node-IO TUs.
//                          Page decoding belongs next to the checksum and
//                          corruption handling, not scattered in indexes.
//   lsdb-assert-on-disk    read-path TUs may not assert() without a NOLINT
//                          justification: disk-loaded data must be rejected
//                          with typed Status::Corruption, never aborted on
//                          (asserts vanish in NDEBUG builds and crash in
//                          debug ones — both wrong for untrusted input).
//   lsdb-counter-mutation  MetricCounters fields may only be mutated
//                          through CounterSink(...) (or inside
//                          util/counters.*), keeping the paper metrics
//                          redirectable per thread by ScopedCounterSink.
//   lsdb-determinism       no rand()/time()/wall-clock in src/lsdb outside
//                          obs/ — paper experiments must replay bit-exact.
//                          std::chrono::steady_clock (monotonic latency
//                          timing) is allowed.
//   lsdb-unchecked-mmap-cast
//                          no typed-pointer casts into mapped snapshot
//                          memory outside the mmap view and the snapshot
//                          layer. Mapped bytes are untrusted until their
//                          page checksum is verified; consumers must use
//                          the per-byte codecs (snapshot_format.h), which
//                          are alignment-safe and cannot dodge
//                          verify-on-first-touch.
//   lsdb-hot-counter-in-descent
//                          index descent TUs may only touch query-path
//                          profiling state through LSDB_INTROSPECT(...),
//                          whose off-cost is one thread-local load and an
//                          untaken branch. Bare QueryProfile hook calls or
//                          direct ThreadProfile() use in a descent loop
//                          put unconditional stat work on the hot path and
//                          break the zero-cost-when-off guarantee.
//   lsdb-raw-intrinsic     no raw vector intrinsics (_mm*/vld1q_*/...) or
//                          vendor SIMD headers outside src/lsdb/simd/.
//                          Vector code must go through the simd:: kernels,
//                          which centralize ISA dispatch, padding-lane
//                          semantics, and the scalar-oracle equivalence
//                          the differential tests enforce.
//   lsdb-unbounded-wait    serving-path TUs (service/, storage/) may not
//                          block forever on a condition variable: plain
//                          .wait() / .Wait() / .WaitOnce() has no deadline
//                          at all, and a timed wait_for/wait_until (or
//                          WaitFor/WaitUntil) without the predicate
//                          overload is lost-wakeup-prone. The sanctioned
//                          form is WaitUntil(mu, deadline, predicate)
//                          with the deadline derived from a budget or
//                          cancel token; a wait that is provably bounded
//                          another way carries a NOLINT with the reason.
//   lsdb-raw-mutex         bare std:: synchronization primitives (mutex,
//                          condition_variable, lock_guard, unique_lock,
//                          ...) are confined to src/lsdb/util/. Everything
//                          else uses lsdb::Mutex / lsdb::MutexLock /
//                          lsdb::CondVar (util/mutex.h), which carry the
//                          Clang thread-safety capability annotations and
//                          feed the runtime lock-order verifier; a raw
//                          primitive is invisible to both.
//   lsdb-tls-redirect-pairing
//                          the TLS redirect guards — ScopedCounterSink,
//                          ScopedQueryProfile, ScopedCancelScope — may
//                          only live as scoped stack objects. Heap- or
//                          static-allocating one (new / make_unique /
//                          static / thread_local) decouples restore from
//                          scope exit: the TLS slot then dangles or leaks
//                          across queries on the worker thread.
//   lsdb-tsa-escape        every LSDB_NO_THREAD_SAFETY_ANALYSIS use must
//                          carry a `tsa-escape: <reason>` comment on the
//                          same line or the comment block directly above.
//                          Justified escapes are counted and summarized on
//                          stderr; a bare escape is a finding (the whole
//                          point of the annotations is that blanket
//                          opt-outs don't accumulate silently).
//
// Suppression: `// NOLINT(lsdb-<rule>): reason` on the offending line, or
// `// NOLINTNEXTLINE(lsdb-<rule>): reason` on the line above. A bare
// NOLINT suppresses every rule. Fixture files can override how they are
// classified with a leading `// lsdb-lint-pretend-path: <path>` comment.
//
// Usage: lsdb_lint <file>...
// Exit status: 0 when clean, 1 when any finding is reported, 2 on I/O
// errors. Findings print as `path:line: [lsdb-rule] message`.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string path;
  size_t line;  // 1-based
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Rule configuration (derived from the shipped tree; see DESIGN.md §11).
// ---------------------------------------------------------------------------

// Names of functions returning Status/StatusOr, extracted from the
// [[nodiscard]] annotations in src/lsdb/**/*.h. A bare statement (or
// cast-to-void) whose outermost trailing call is one of these discards an
// error. "status" covers `x.status();` chains on StatusOr.
const std::set<std::string>& StatusNames() {
  static const std::set<std::string> kNames = {
      "Alloc", "AllocNode", "Allocate", "Append", "AverageBucketOccupancy",
      "BlockEntries", "BuildIndexes", "BulkLoad", "CheckInvariants",
      "CheckMutable", "CheckRec", "ChoosePath", "CollectLeafBlocks",
      "CollectLeafMbrs", "CollectLeafRegions", "Contains", "Erase",
      "EraseRec", "ExecuteBatch", "ExecuteBatchSequential", "Fetch",
      "FindIntersectingLeaves", "FindLeaf", "FindLeafPath", "FixUnderflow",
      "Flush", "FlushAll", "Free", "FreeNode", "FreeSubtreePage", "Get",
      "GetVictimFrame", "GrowRoot", "HandleOverflow", "Init", "Insert",
      "InsertEntry", "InsertRec", "IsLeaf", "Load", "LoadChainedLeaf",
      "LoadLeafChain", "LoadNode", "LocateBlock", "Nearest", "New", "Open",
      "PointQuery", "PointQueryEx", "PointWindow", "Read",
      "ReadPageVerified", "ReadSuperblock", "Scan", "ScanPiece", "SeekGE",
      "SeekLE", "SetUpObservability", "SplitBlock", "SplitInternalMulti",
      "SplitLeafMulti", "SplitNode", "SplitSubtree", "Store",
      "StoreLeafChain", "StoreNode", "TryMergeUpward", "UnpackKeyChecked",
      "UpdatePathRects", "VisitLeavesInCellRect", "VisitWindowSegments",
      "WindowQuery", "WindowQueryEx", "WindowQueryRec",
      "WindowQueryStaticDecomposed", "WindowQueryTraversal", "WindowRec",
      "Write", "WritePageStamped", "WriteSuperblock", "status",
  };
  return kNames;
}

// MetricCounters field names (util/counters.h).
const std::vector<std::string>& CounterFields() {
  static const std::vector<std::string> kFields = {
      "disk_reads",    "disk_writes", "page_fetches",
      "segment_comps", "bbox_comps",  "bucket_comps",
  };
  return kFields;
}

// TUs that decode disk-resident bytes; asserts there need a justification.
const std::vector<std::string>& ReadPathTus() {
  static const std::vector<std::string> kTus = {
      "src/lsdb/btree/btree.cc",        "src/lsdb/rtree/rnode.cc",
      "src/lsdb/rtree/rstar_tree.cc",   "src/lsdb/rplus/rplus_tree.cc",
      "src/lsdb/rtree/node_cache.cc",   "src/lsdb/pmr/pmr_quadtree.cc",
      "src/lsdb/storage/buffer_pool.cc", "src/lsdb/storage/page_file.cc",
      "src/lsdb/storage/superblock.cc", "src/lsdb/seg/segment_table.cc",
      "src/lsdb/grid/uniform_grid.cc",
  };
  return kTus;
}

// TUs allowed to reinterpret raw page bytes: the storage layer itself plus
// the node (de)serializers and the checksum kernel. The SIMD kernels cast
// in-memory SoA lanes (never page bytes) to vector types, which needs the
// same spelling.
const std::vector<std::string>& PageCastAllowlist() {
  static const std::vector<std::string> kAllow = {
      "src/lsdb/storage/", "src/lsdb/rtree/rnode.cc",
      "src/lsdb/btree/btree.cc", "src/lsdb/util/crc32c.cc",
      "src/lsdb/simd/",
  };
  return kAllow;
}

// TUs allowed to hold typed pointers into mapped memory: the mmap view
// class itself and the snapshot layer that owns the mapping (the single
// mmap(2) call site in the tree).
const std::vector<std::string>& MmapCastAllowlist() {
  static const std::vector<std::string> kAllow = {
      "src/lsdb/storage/mmap_page_file",
      "src/lsdb/snapshot/",
  };
  return kAllow;
}

// Serving-path layers where a stuck thread wedges the whole service: the
// worker pool / admission queue and the buffer pool. Condition-variable
// waits there must be predicate-checked and deadline-bounded.
const std::vector<std::string>& WaitScopes() {
  static const std::vector<std::string> kScopes = {
      "src/lsdb/service/", "src/lsdb/storage/",
  };
  return kScopes;
}

// TUs containing index descent loops (the query hot path). Profiling state
// there may only be touched through the LSDB_INTROSPECT macro.
const std::vector<std::string>& DescentTus() {
  static const std::vector<std::string> kTus = {
      "src/lsdb/btree/btree.cc",      "src/lsdb/rtree/rstar_tree.cc",
      "src/lsdb/rplus/rplus_tree.cc", "src/lsdb/pmr/pmr_quadtree.cc",
      "src/lsdb/grid/uniform_grid.cc",
  };
  return kTus;
}

// ---------------------------------------------------------------------------
// Small text helpers.
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool PathContains(const std::string& path, const std::string& part) {
  return path.find(part) != std::string::npos;
}

// True when `hay[pos..]` starts an occurrence of identifier `word` with
// identifier boundaries on both sides.
bool WordAt(const std::string& hay, size_t pos, const std::string& word) {
  if (hay.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && IsIdentChar(hay[pos - 1])) return false;
  size_t end = pos + word.size();
  if (end < hay.size() && IsIdentChar(hay[end])) return false;
  return true;
}

// Strips // and /* */ comments and the contents of string/char literals
// (quotes stay so token boundaries survive). Keeps the line count intact so
// findings map back to source lines.
std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string s;
    s.reserve(line.size());
    for (size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        s.push_back(quote);
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        s.push_back(quote);
        continue;
      }
      s.push_back(c);
    }
    out.push_back(std::move(s));
  }
  return out;
}

// NOLINT / NOLINTNEXTLINE handling against the *raw* lines (comments carry
// the markers). `line` is 0-based.
bool MarkerSuppresses(const std::string& raw, const std::string& marker,
                      const std::string& rule) {
  size_t pos = raw.find(marker);
  while (pos != std::string::npos) {
    size_t after = pos + marker.size();
    // Bare NOLINT (not NOLINTNEXTLINE when searching for NOLINT).
    if (after >= raw.size() || raw[after] != '(') {
      if (marker == "NOLINT" &&
          raw.compare(pos, 13, "NOLINTNEXTLINE") == 0) {
        pos = raw.find(marker, pos + 1);
        continue;
      }
      return true;  // bare marker suppresses everything
    }
    size_t close = raw.find(')', after);
    std::string list = raw.substr(after + 1, close == std::string::npos
                                                 ? std::string::npos
                                                 : close - after - 1);
    if (list.find(rule) != std::string::npos) return true;
    pos = raw.find(marker, after);
  }
  return false;
}

bool Suppressed(const std::vector<std::string>& raw, size_t line0,
                const std::string& rule) {
  if (line0 < raw.size() && MarkerSuppresses(raw[line0], "NOLINT", rule)) {
    return true;
  }
  if (line0 > 0 &&
      MarkerSuppresses(raw[line0 - 1], "NOLINTNEXTLINE", rule)) {
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule: lsdb-ignored-status
// ---------------------------------------------------------------------------

bool IsKeyword(const std::string& tok) {
  static const std::set<std::string> kKeywords = {
      "if",       "else",     "for",      "while",   "do",      "switch",
      "case",     "default",  "return",   "goto",    "break",   "continue",
      "new",      "delete",   "using",    "namespace", "template",
      "typedef",  "struct",   "class",    "enum",    "union",   "public",
      "private",  "protected", "static",  "const",   "constexpr", "auto",
      "void",     "bool",     "char",     "int",     "unsigned", "long",
      "short",    "float",    "double",   "sizeof",  "operator", "throw",
      "try",      "catch",    "co_return", "co_await", "co_yield",
  };
  return kKeywords.count(tok) > 0;
}

// Does this trimmed line begin a plain expression statement of the form
// `ident(.|->|::|()...`? Declarations (`Type name...`) and control flow do
// not match.
bool StartsCallChain(const std::string& t) {
  size_t i = 0;
  while (i < t.size() && IsIdentChar(t[i])) ++i;
  if (i == 0) return false;
  const std::string first = t.substr(0, i);
  if (IsKeyword(first)) return false;
  while (i < t.size() && (t[i] == ' ' || t[i] == '\t')) ++i;
  if (i >= t.size()) return false;
  return t[i] == '.' || t[i] == '(' ||
         (t[i] == ':' && i + 1 < t.size() && t[i + 1] == ':') ||
         (t[i] == '-' && i + 1 < t.size() && t[i + 1] == '>');
}

// Analyzes one complete expression statement (text up to and including the
// terminating depth-0 ';'). Returns the name of the outermost trailing
// call, or "" when the statement is not a pure call chain (assignments,
// arithmetic at depth 0, ...).
std::string OutermostTrailingCall(const std::string& stmt) {
  int depth = 0;
  std::string ident;
  std::string top_call;
  for (size_t i = 0; i < stmt.size(); ++i) {
    const char c = stmt[i];
    if (c == '(' || c == '[') {
      if (c == '(' && depth == 0 && !ident.empty()) top_call = ident;
      ++depth;
      ident.clear();
      continue;
    }
    if (c == ')' || c == ']') {
      --depth;
      ident.clear();
      continue;
    }
    if (depth > 0) continue;  // call arguments don't matter
    if (IsIdentChar(c)) {
      ident.push_back(c);
      continue;
    }
    if (c == ' ' || c == '\t') continue;
    if (c == ';') break;
    if (c == '.' || c == ':') {  // member access / scope: next segment
      ident.clear();
      continue;
    }
    if (c == '-' && i + 1 < stmt.size() && stmt[i + 1] == '>') {
      ident.clear();
      ++i;
      continue;
    }
    // Any other depth-0 token — an assignment, arithmetic, a comma — means
    // the value is consumed (or this is not a plain call statement).
    return "";
  }
  return top_call;
}

void CheckIgnoredStatus(const std::string& path,
                        const std::vector<std::string>& raw,
                        const std::vector<std::string>& stripped,
                        std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-ignored-status";
  const size_t n = stripped.size();

  // Part 1: cast-to-void evasion anywhere on a line.
  for (size_t i = 0; i < n; ++i) {
    const std::string& line = stripped[i];
    size_t cast = line.find("(void)");
    if (cast == std::string::npos) cast = line.find("static_cast<void>");
    if (cast == std::string::npos) continue;
    // Only flag when a known Status-returning name is invoked in the cast
    // expression; `(void)unused_param;` stays legal.
    for (const std::string& name : StatusNames()) {
      size_t pos = line.find(name, cast);
      while (pos != std::string::npos) {
        size_t after = pos + name.size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (WordAt(line, pos, name) && after < line.size() &&
            line[after] == '(') {
          if (!Suppressed(raw, i, kRule)) {
            findings->push_back(
                {path, i + 1, kRule,
                 "cast-to-void discards the Status from " + name +
                     "(); handle it or call .IgnoreError()"});
          }
          pos = std::string::npos;
          cast = std::string::npos;  // one finding per line is enough
          break;
        }
        pos = line.find(name, pos + 1);
      }
      if (cast == std::string::npos) break;
    }
  }

  // Part 2: bare expression statements whose outermost trailing call
  // returns Status/StatusOr.
  size_t i = 0;
  while (i < n) {
    const std::string t = Trim(stripped[i]);
    if (!StartsCallChain(t)) {
      ++i;
      continue;
    }
    // A line that merely continues the previous one (`auto x =` / an open
    // argument list / a binary operator) is not a statement start, even
    // when it looks like a call chain.
    {
      size_t p = i;
      std::string prev;
      while (p > 0 && prev.empty()) prev = Trim(stripped[--p]);
      if (!prev.empty()) {
        const char last = prev.back();
        static const std::string kContinuation = "=,(+-*/%&|<>?:.";
        if (kContinuation.find(last) != std::string::npos) {
          ++i;
          continue;
        }
      }
    }
    // Accumulate the statement until a ';' at paren depth 0. A '{' at
    // depth 0 means this was a definition or compound statement: bail and
    // rescan the following lines individually.
    std::string stmt;
    int depth = 0;
    bool complete = false, aborted = false;
    size_t j = i;
    for (; j < n && j < i + 200; ++j) {
      const std::string& line = stripped[j];
      for (char c : line) {
        if (c == '(' || c == '[') ++depth;
        if (c == ')' || c == ']') --depth;
        if (depth == 0 && c == '{') {
          aborted = true;
          break;
        }
        stmt.push_back(c);
        if (depth == 0 && c == ';') {
          complete = true;
          break;
        }
      }
      stmt.push_back(' ');
      if (complete || aborted) break;
    }
    if (complete) {
      const std::string call = OutermostTrailingCall(Trim(stmt));
      if (!call.empty() && StatusNames().count(call) > 0 &&
          !Suppressed(raw, i, kRule)) {
        findings->push_back(
            {path, i + 1, kRule,
             "result of " + call +
                 "() is a Status/StatusOr and is silently discarded; "
                 "handle it or call .IgnoreError()"});
      }
      i = j + 1;
    } else {
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-page-cast
// ---------------------------------------------------------------------------

// Matches C-style casts to byte pointers: (uint8_t*), (const char *), ...
bool HasByteCast(const std::string& line, size_t* where) {
  static const std::vector<std::string> kByteTypes = {
      "uint8_t", "int8_t", "char", "unsigned char", "signed char",
      "std::uint8_t", "std::byte", "void",
  };
  for (size_t pos = line.find('('); pos != std::string::npos;
       pos = line.find('(', pos + 1)) {
    size_t p = pos + 1;
    while (p < line.size() && line[p] == ' ') ++p;
    if (line.compare(p, 6, "const ") == 0) p += 6;
    while (p < line.size() && line[p] == ' ') ++p;
    for (const std::string& ty : kByteTypes) {
      if (line.compare(p, ty.size(), ty) != 0) continue;
      size_t q = p + ty.size();
      if (q < line.size() && IsIdentChar(line[q])) continue;
      while (q < line.size() && (line[q] == ' ' || line[q] == '*')) ++q;
      if (q < line.size() && line[q] == ')' && line.find('*', p) < q) {
        // Must be applied to something: a cast, not a parameter list.
        size_t r = q + 1;
        while (r < line.size() && line[r] == ' ') ++r;
        if (r < line.size() &&
            (IsIdentChar(line[r]) || line[r] == '(' || line[r] == '&')) {
          *where = pos;
          return true;
        }
      }
    }
  }
  return false;
}

void CheckPageCast(const std::string& path,
                   const std::vector<std::string>& raw,
                   const std::vector<std::string>& stripped,
                   std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-page-cast";
  if (!PathContains(path, "src/lsdb/")) return;
  for (const std::string& allow : PageCastAllowlist()) {
    if (PathContains(path, allow)) return;
  }
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    size_t where = 0;
    const bool reinterpret = line.find("reinterpret_cast<") !=
                             std::string::npos;
    if ((reinterpret || HasByteCast(line, &where)) &&
        !Suppressed(raw, i, kRule)) {
      findings->push_back(
          {path, i + 1, kRule,
           std::string(reinterpret ? "reinterpret_cast" : "C-style byte cast") +
               " of raw bytes outside storage/ and the node-IO TUs; move "
               "page decoding next to its corruption checks"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-assert-on-disk
// ---------------------------------------------------------------------------

void CheckAssertOnDisk(const std::string& path,
                       const std::vector<std::string>& raw,
                       const std::vector<std::string>& stripped,
                       std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-assert-on-disk";
  bool read_path = false;
  for (const std::string& tu : ReadPathTus()) {
    if (EndsWith(path, tu)) {
      read_path = true;
      break;
    }
  }
  if (!read_path) return;
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    size_t pos = line.find("assert");
    while (pos != std::string::npos) {
      size_t after = pos + 6;
      while (after < line.size() && line[after] == ' ') ++after;
      if (WordAt(line, pos, "assert") && after < line.size() &&
          line[after] == '(') {
        if (!Suppressed(raw, i, kRule)) {
          findings->push_back(
              {path, i + 1, kRule,
               "assert() in a disk-read TU: corrupt pages must surface as "
               "Status::Corruption; if this checks an in-memory invariant, "
               "annotate it with // NOLINT(lsdb-assert-on-disk): <reason>"});
        }
        break;
      }
      pos = line.find("assert", pos + 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-counter-mutation
// ---------------------------------------------------------------------------

bool ChainChar(char c) {
  return IsIdentChar(c) || c == '.' || c == '(' || c == ')' || c == '[' ||
         c == ']' || c == ':' || c == '-' || c == '>' || c == '_' ||
         c == '&' || c == '*';
}

void CheckCounterMutation(const std::string& path,
                          const std::vector<std::string>& raw,
                          const std::vector<std::string>& stripped,
                          std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-counter-mutation";
  if (!PathContains(path, "src/lsdb/")) return;
  if (EndsWith(path, "util/counters.h") ||
      EndsWith(path, "util/counters.cc")) {
    return;  // the counter implementation mutates its own fields
  }
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    for (const std::string& field : CounterFields()) {
      size_t pos = line.find(field);
      bool flagged = false;
      while (pos != std::string::npos && !flagged) {
        if (!WordAt(line, pos, field)) {
          pos = line.find(field, pos + 1);
          continue;
        }
        // The access chain the field belongs to, scanned backwards.
        size_t chain_begin = pos;
        while (chain_begin > 0 && ChainChar(line[chain_begin - 1])) {
          --chain_begin;
        }
        bool mutated = false;
        // Postfix / compound mutation: field followed by a mutating op.
        // Plain `=` is deliberately not matched: counters are increment-
        // only, and `=` is what field declarations and copies into report
        // structs (QueryStats, QuerySpan) legitimately use.
        size_t after = pos + field.size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (after + 1 < line.size()) {
          const std::string op = line.substr(after, 2);
          if (op == "++" || op == "--" || op == "+=" || op == "-=" ||
              op == "*=" || op == "/=" || op == "|=" || op == "&=" ||
              op == "^=") {
            mutated = true;
          }
        }
        // Prefix mutation: ++/-- immediately before the chain.
        size_t before = chain_begin;
        while (before > 0 && line[before - 1] == ' ') --before;
        if (before >= 2) {
          const std::string op = line.substr(before - 2, 2);
          if (op == "++" || op == "--") mutated = true;
        }
        // The sink may bind earlier on the line than the mutated chain:
        // `if (MetricCounters* m = CounterSink(...)) ++m->field;`.
        if (mutated && line.find("CounterSink(") == std::string::npos &&
            !Suppressed(raw, i, kRule)) {
          findings->push_back(
              {path, i + 1, kRule,
               "direct mutation of MetricCounters field '" + field +
                   "'; route increments through CounterSink(...) so "
                   "ScopedCounterSink can redirect them"});
          flagged = true;
        }
        pos = line.find(field, pos + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-determinism
// ---------------------------------------------------------------------------

void CheckDeterminism(const std::string& path,
                      const std::vector<std::string>& raw,
                      const std::vector<std::string>& stripped,
                      std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-determinism";
  if (!PathContains(path, "src/lsdb/")) return;
  if (PathContains(path, "src/lsdb/obs/")) return;
  static const std::vector<std::string> kCallBans = {"rand", "srand",
                                                     "time", "clock"};
  static const std::vector<std::string> kTokenBans = {
      "system_clock", "high_resolution_clock", "random_device",
      "gettimeofday",
  };
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    std::string hit;
    for (const std::string& name : kCallBans) {
      size_t pos = line.find(name);
      while (pos != std::string::npos) {
        size_t after = pos + name.size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (WordAt(line, pos, name) && after < line.size() &&
            line[after] == '(') {
          hit = name + "()";
          break;
        }
        pos = line.find(name, pos + 1);
      }
      if (!hit.empty()) break;
    }
    if (hit.empty()) {
      for (const std::string& tok : kTokenBans) {
        size_t pos = line.find(tok);
        if (pos != std::string::npos && WordAt(line, pos, tok)) {
          hit = tok;
          break;
        }
      }
    }
    if (!hit.empty() && !Suppressed(raw, i, kRule)) {
      findings->push_back(
          {path, i + 1, kRule,
           hit + " in src/lsdb breaks experiment reproducibility; use the "
                 "seeded lsdb::Random (or steady_clock for durations), or "
                 "move the code under obs/"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-unchecked-mmap-cast
// ---------------------------------------------------------------------------

void CheckUncheckedMmapCast(const std::string& path,
                            const std::vector<std::string>& raw,
                            const std::vector<std::string>& stripped,
                            std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-unchecked-mmap-cast";
  if (!PathContains(path, "src/lsdb/")) return;
  for (const std::string& allow : MmapCastAllowlist()) {
    if (PathContains(path, allow)) return;
  }
  // Substring match on purpose: `mapped->`, `MappedPage`, `snapshot_mmap`
  // all mark a line as touching mapped memory.
  static const std::vector<std::string> kMappedTokens = {
      "mmap", "mapped", "Mapped", "MapPage",
  };
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    bool mapped_line = false;
    for (const std::string& tok : kMappedTokens) {
      if (line.find(tok) != std::string::npos) {
        mapped_line = true;
        break;
      }
    }
    if (!mapped_line) continue;
    std::string cast;
    size_t where = 0;
    if (line.find("reinterpret_cast<") != std::string::npos) {
      cast = "reinterpret_cast";
    } else if (HasByteCast(line, &where)) {
      cast = "C-style cast";
    } else {
      // static_cast to any pointer type (a '*' inside the template args).
      const size_t pos = line.find("static_cast<");
      if (pos != std::string::npos) {
        const size_t close = line.find('>', pos);
        if (close != std::string::npos && line.find('*', pos) < close) {
          cast = "static_cast to a pointer";
        }
      }
    }
    if (!cast.empty() && !Suppressed(raw, i, kRule)) {
      findings->push_back(
          {path, i + 1, kRule,
           cast + " into mapped memory outside the mmap view; mapped bytes "
                  "are untrusted until checksum-verified — decode them with "
                  "the per-byte codecs (snapshot_format.h)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-hot-counter-in-descent
// ---------------------------------------------------------------------------

void CheckHotCounterInDescent(const std::string& path,
                              const std::vector<std::string>& raw,
                              const std::vector<std::string>& stripped,
                              std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-hot-counter-in-descent";
  bool descent = false;
  for (const std::string& tu : DescentTus()) {
    if (EndsWith(path, tu)) {
      descent = true;
      break;
    }
  }
  if (!descent) return;
  // QueryProfile hook methods (introspect/profiler.h). A call to one of
  // these outside LSDB_INTROSPECT runs unconditionally — stat work on the
  // hot path even with introspection off.
  static const std::vector<std::string> kHooks = {
      "OnNode", "OnBtreeNode", "BeginBucket", "EndBucket", "OnResult",
  };
  // Direct access to the thread-local profiling target. Descent TUs never
  // need it: the macro performs the load-and-test itself.
  static const std::vector<std::string> kTlsTokens = {
      "ThreadProfile", "tls_query_profile",
  };
  // Paren depth inside an LSDB_INTROSPECT(...) argument list; hook names
  // on a wrapped continuation line are still guarded.
  int guard_depth = 0;
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    bool guarded = guard_depth > 0;
    size_t macro = line.find("LSDB_INTROSPECT");
    if (macro != std::string::npos) guarded = true;
    // Update the carry-over depth: from the macro's opening paren (or the
    // line start when already inside one) to the end of the line.
    size_t from = guard_depth > 0
                      ? 0
                      : (macro == std::string::npos ? line.size() : macro);
    for (size_t p = from; p < line.size(); ++p) {
      if (line[p] == '(') ++guard_depth;
      if (line[p] == ')' && guard_depth > 0) {
        if (--guard_depth == 0) break;  // macro closed; rest is unguarded
      }
    }

    std::string hit;
    for (const std::string& hook : kHooks) {
      size_t pos = line.find(hook);
      while (pos != std::string::npos) {
        size_t after = pos + hook.size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (WordAt(line, pos, hook) && after < line.size() &&
            line[after] == '(') {
          hit = hook + "()";
          break;
        }
        pos = line.find(hook, pos + 1);
      }
      if (!hit.empty()) break;
    }
    if (hit.empty()) {
      for (const std::string& tok : kTlsTokens) {
        size_t pos = line.find(tok);
        if (pos != std::string::npos && WordAt(line, pos, tok)) {
          hit = tok;
          guarded = false;  // never sanctioned in a descent TU, macro or not
          break;
        }
      }
    }
    if (!hit.empty() && !guarded && !Suppressed(raw, i, kRule)) {
      findings->push_back(
          {path, i + 1, kRule,
           "unguarded profiling touch '" + hit +
               "' in an index descent TU; wrap it as LSDB_INTROSPECT(...) "
               "so the off-path stays one TLS load and an untaken branch"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-raw-intrinsic
// ---------------------------------------------------------------------------

void CheckRawIntrinsic(const std::string& path,
                       const std::vector<std::string>& raw,
                       const std::vector<std::string>& stripped,
                       std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-raw-intrinsic";
  if (!PathContains(path, "src/lsdb/")) return;
  if (PathContains(path, "src/lsdb/simd/")) return;
  // Vendor SIMD headers; pulling one in is the first step of scattering
  // intrinsics, so the include itself is the finding.
  static const std::vector<std::string> kHeaders = {
      "immintrin.h", "emmintrin.h", "xmmintrin.h", "smmintrin.h",
      "tmmintrin.h", "nmmintrin.h", "wmmintrin.h", "avxintrin.h",
      "avx2intrin.h", "arm_neon.h", "arm_sve.h",
  };
  // NEON intrinsics have no common `_mm`-style prefix; match the families
  // the kernels use (loads/stores, compares, bitwise, dup, reductions).
  static const std::vector<std::string> kNeonPrefixes = {
      "vld1",  "vst1",  "vdupq_", "vcgtq_", "vcgeq_", "vcltq_", "vceqq_",
      "vorrq_", "vandq_", "veorq_", "vmvnq_", "vaddvq_", "vminvq_",
      "vmaxvq_",
  };
  for (size_t i = 0; i < stripped.size(); ++i) {
    // Include scan against the raw line: quoted includes are string
    // literals and would be blanked by the stripper.
    if (raw[i].find("#include") != std::string::npos) {
      for (const std::string& hdr : kHeaders) {
        if (raw[i].find(hdr) != std::string::npos &&
            !Suppressed(raw, i, kRule)) {
          findings->push_back(
              {path, i + 1, kRule,
               "vendor SIMD header <" + hdr +
                   "> outside src/lsdb/simd/; use the simd:: kernels "
                   "(simd/simd.h) instead of raw intrinsics"});
          break;
        }
      }
    }
    const std::string& line = stripped[i];
    std::string hit;
    // x86 intrinsics: an identifier starting `_mm` (covers _mm_, _mm256_,
    // _mm512_ and the __m128i/__m256i types via their _mm-prefixed use).
    size_t pos = line.find("_mm");
    while (pos != std::string::npos && hit.empty()) {
      const bool word_start = pos == 0 || !IsIdentChar(line[pos - 1]);
      if (word_start && pos + 3 < line.size() &&
          (line[pos + 3] == '_' ||
           std::isdigit(static_cast<unsigned char>(line[pos + 3])) != 0)) {
        size_t end = pos;
        while (end < line.size() && IsIdentChar(line[end])) ++end;
        hit = line.substr(pos, end - pos);
      }
      pos = line.find("_mm", pos + 1);
    }
    if (hit.empty()) {
      for (const std::string& prefix : kNeonPrefixes) {
        size_t p = line.find(prefix);
        while (p != std::string::npos) {
          if (p == 0 || !IsIdentChar(line[p - 1])) {
            size_t end = p;
            while (end < line.size() && IsIdentChar(line[end])) ++end;
            hit = line.substr(p, end - p);
            break;
          }
          p = line.find(prefix, p + 1);
        }
        if (!hit.empty()) break;
      }
    }
    if (!hit.empty() && !Suppressed(raw, i, kRule)) {
      findings->push_back(
          {path, i + 1, kRule,
           "raw SIMD intrinsic '" + hit +
               "' outside src/lsdb/simd/; route vector code through the "
               "simd:: kernels so ISA dispatch, padding-lane semantics, "
               "and the scalar oracle stay centralized"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lsdb-unbounded-wait
// ---------------------------------------------------------------------------

// Counts top-level arguments of a call whose opening paren is at
// (line_idx, paren_pos) in `stripped`, scanning across continuation lines.
// Returns 0 for an empty list, -1 when the list never closes in range.
int CountCallArgs(const std::vector<std::string>& stripped, size_t line_idx,
                  size_t paren_pos) {
  int depth = 0;
  int commas = 0;
  bool any_token = false;
  for (size_t j = line_idx; j < stripped.size() && j < line_idx + 50; ++j) {
    const std::string& line = stripped[j];
    for (size_t p = (j == line_idx ? paren_pos : 0); p < line.size(); ++p) {
      const char c = line[p];
      if (c == '(' || c == '[') {
        ++depth;
        continue;
      }
      if (c == ')' || c == ']') {
        --depth;
        if (depth == 0) return any_token ? commas + 1 : 0;
        continue;
      }
      if (depth == 1 && c == ',') {
        ++commas;
        continue;
      }
      if (depth >= 1 && c != ' ' && c != '\t') any_token = true;
    }
  }
  return -1;
}

void CheckUnboundedWait(const std::string& path,
                        const std::vector<std::string>& raw,
                        const std::vector<std::string>& stripped,
                        std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-unbounded-wait";
  bool in_scope = false;
  for (const std::string& scope : WaitScopes()) {
    if (PathContains(path, scope)) {
      in_scope = true;
      break;
    }
  }
  if (!in_scope) return;
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    // A wait must be a member call (`cv.wait(...)` / `cv->wait(...)`):
    // that anchors the match to condition variables / futures and skips
    // free functions that happen to contain "wait". The capitalized names
    // are lsdb::CondVar's spellings: Wait/WaitOnce are deadline-less,
    // WaitFor/WaitUntil are timed and must pass the predicate overload.
    static const std::vector<std::string> kDeadlineless = {"wait", "Wait",
                                                           "WaitOnce"};
    static const std::vector<std::string> kTimed = {"wait_for", "wait_until",
                                                    "WaitFor", "WaitUntil"};
    std::vector<std::string> names;
    names.insert(names.end(), kDeadlineless.begin(), kDeadlineless.end());
    names.insert(names.end(), kTimed.begin(), kTimed.end());
    for (const std::string& name : names) {
      const bool deadlineless =
          name == "wait" || name == "Wait" || name == "WaitOnce";
      size_t pos = line.find(name);
      while (pos != std::string::npos) {
        const bool member =
            (pos > 0 && line[pos - 1] == '.') ||
            (pos > 1 && line[pos - 2] == '-' && line[pos - 1] == '>');
        size_t after = pos + name.size();
        while (after < line.size() && line[after] == ' ') ++after;
        if (member && WordAt(line, pos, name) && after < line.size() &&
            line[after] == '(') {
          if (deadlineless) {
            if (!Suppressed(raw, i, kRule)) {
              findings->push_back(
                  {path, i + 1, kRule,
                   "deadline-less " + name +
                       "() in a serving-path TU can block a worker "
                       "forever; use WaitUntil(mu, deadline, predicate) "
                       "with a budget- or token-derived deadline, or "
                       "annotate // NOLINT(lsdb-unbounded-wait): <reason>"});
            }
          } else {
            // Timed waits must use the predicate overload (>= 3 args):
            // the 2-arg form returns cv_status and silently tolerates
            // spurious wakeups / missed notifies.
            const int args = CountCallArgs(stripped, i, after);
            if (args >= 0 && args < 3 && !Suppressed(raw, i, kRule)) {
              findings->push_back(
                  {path, i + 1, kRule,
                   name + "() without a predicate is lost-wakeup-prone; "
                          "pass the predicate overload " +
                       name + "(mu, deadline, predicate)"});
            }
          }
          break;  // one finding per line per name
        }
        pos = line.find(name, pos + 1);
      }
    }
  }
}

// lsdb-raw-mutex: inside src/lsdb/ (util/ excepted), synchronization must
// go through lsdb::Mutex / lsdb::MutexLock / lsdb::CondVar so that every
// lock participates in both the Clang thread-safety analysis and the
// runtime lock-order verifier. A bare std:: primitive is invisible to
// both, which is exactly how an unannotated deadlock slips in.
void CheckRawMutex(const std::string& path,
                   const std::vector<std::string>& raw,
                   const std::vector<std::string>& stripped,
                   std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-raw-mutex";
  if (!PathContains(path, "src/lsdb/")) return;
  if (PathContains(path, "src/lsdb/util/")) return;  // the wrappers live here
  static const std::vector<std::string> kBanned = {
      "mutex",          "timed_mutex",
      "recursive_mutex", "recursive_timed_mutex",
      "shared_mutex",   "shared_timed_mutex",
      "condition_variable", "condition_variable_any",
      "lock_guard",     "unique_lock",
      "scoped_lock",    "shared_lock",
  };
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    size_t pos = line.find("std::");
    while (pos != std::string::npos) {
      const size_t name_pos = pos + 5;
      for (const std::string& name : kBanned) {
        if (WordAt(line, name_pos, name)) {
          if (!Suppressed(raw, i, kRule)) {
            findings->push_back(
                {path, i + 1, kRule,
                 "bare std::" + name +
                     " bypasses the thread-safety annotations and the "
                     "lock-order verifier; use lsdb::Mutex / "
                     "lsdb::MutexLock / lsdb::CondVar from "
                     "util/mutex.h instead"});
          }
          break;  // one finding per std:: occurrence
        }
      }
      pos = line.find("std::", pos + 1);
    }
  }
}

// lsdb-tls-redirect-pairing: the TLS redirect guards (ScopedCounterSink,
// ScopedQueryProfile, ScopedCancelScope) save a thread-local slot in their
// constructor and restore it in their destructor, so correctness depends
// on strict LIFO nesting on one thread. Heap or static storage decouples
// destruction order from scope order and silently corrupts the redirect
// chain for every later frame on the thread.
void CheckTlsRedirectPairing(const std::string& path,
                             const std::vector<std::string>& raw,
                             const std::vector<std::string>& stripped,
                             std::vector<Finding>* findings) {
  const std::string kRule = "lsdb-tls-redirect-pairing";
  static const std::vector<std::string> kGuards = {
      "ScopedCounterSink", "ScopedQueryProfile", "ScopedCancelScope"};
  // Storage forms that break scope-paired destruction. The `<` forms catch
  // std::make_unique<Guard> / std::make_shared<Guard> / vector<Guard>.
  static const std::vector<std::string> kBadPrefixes = {
      "new ", "make_unique<", "make_shared<", "static ", "thread_local ",
      "vector<", "deque<", "optional<", "unique_ptr<", "shared_ptr<",
  };
  for (size_t i = 0; i < stripped.size(); ++i) {
    const std::string& line = stripped[i];
    for (const std::string& guard : kGuards) {
      size_t pos = line.find(guard);
      bool flagged = false;
      while (pos != std::string::npos && !flagged) {
        if (WordAt(line, pos, guard)) {
          for (const std::string& prefix : kBadPrefixes) {
            const size_t start = pos >= prefix.size() ? pos - prefix.size()
                                                      : std::string::npos;
            if (start != std::string::npos &&
                line.compare(start, prefix.size(), prefix) == 0 &&
                (start == 0 || !IsIdentChar(line[start - 1]))) {
              if (!Suppressed(raw, i, kRule)) {
                findings->push_back(
                    {path, i + 1, kRule,
                     guard + " redirects a thread-local slot and must be "
                             "a block-scoped stack object; '" +
                         Trim(prefix) + "' storage breaks the LIFO "
                                        "save/restore pairing"});
              }
              flagged = true;  // one finding per line per guard
              break;
            }
          }
        }
        pos = line.find(guard, pos + 1);
      }
    }
  }
}

// lsdb-tsa-escape: LSDB_NO_THREAD_SAFETY_ANALYSIS turns the analysis off
// for a whole function, so every use must explain itself with a
// `tsa-escape: <reason>` comment (same line or in the comment block
// directly above). Justified escapes are counted and reported so the
// total stays visible in CI logs; bare escapes are findings.
void CheckTsaEscape(const std::string& path,
                    const std::vector<std::string>& raw,
                    const std::vector<std::string>& stripped,
                    std::vector<Finding>* findings,
                    size_t* justified_escapes) {
  const std::string kRule = "lsdb-tsa-escape";
  // The macro's own definition (and its documentation) live here.
  if (EndsWith(path, "util/thread_annotations.h")) return;
  const std::string kMacro = "LSDB_NO_THREAD_SAFETY_ANALYSIS";
  const std::string kTag = "tsa-escape:";
  for (size_t i = 0; i < stripped.size(); ++i) {
    size_t pos = stripped[i].find(kMacro);
    if (pos == std::string::npos || !WordAt(stripped[i], pos, kMacro)) {
      continue;
    }
    bool justified = raw[i].find(kTag) != std::string::npos;
    // Walk the contiguous comment block directly above the use.
    for (size_t j = i; !justified && j > 0; --j) {
      const std::string above = Trim(raw[j - 1]);
      if (above.compare(0, 2, "//") != 0) break;
      justified = above.find(kTag) != std::string::npos;
    }
    if (justified) {
      if (justified_escapes != nullptr) ++*justified_escapes;
    } else if (!Suppressed(raw, i, kRule)) {
      findings->push_back(
          {path, i + 1, kRule,
           "LSDB_NO_THREAD_SAFETY_ANALYSIS without a justification; add "
           "a `// tsa-escape: <why the analysis cannot see this "
           "invariant>` comment on the same line or directly above"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

bool LintFile(const std::string& arg_path, std::vector<Finding>* findings,
              size_t* justified_escapes) {
  std::ifstream in(arg_path);
  if (!in) {
    std::fprintf(stderr, "lsdb_lint: cannot open %s\n", arg_path.c_str());
    return false;
  }
  std::vector<std::string> raw;
  std::string line;
  while (std::getline(in, line)) raw.push_back(line);

  // Fixtures masquerade as tree files via a pretend-path directive.
  std::string path = arg_path;
  for (size_t i = 0; i < raw.size() && i < 10; ++i) {
    const std::string kDirective = "lsdb-lint-pretend-path:";
    size_t pos = raw[i].find(kDirective);
    if (pos != std::string::npos) {
      path = Trim(raw[i].substr(pos + kDirective.size()));
      break;
    }
  }

  const std::vector<std::string> stripped = StripCommentsAndStrings(raw);
  std::vector<Finding> file_findings;
  CheckIgnoredStatus(path, raw, stripped, &file_findings);
  CheckPageCast(path, raw, stripped, &file_findings);
  CheckAssertOnDisk(path, raw, stripped, &file_findings);
  CheckCounterMutation(path, raw, stripped, &file_findings);
  CheckDeterminism(path, raw, stripped, &file_findings);
  CheckUncheckedMmapCast(path, raw, stripped, &file_findings);
  CheckHotCounterInDescent(path, raw, stripped, &file_findings);
  CheckRawIntrinsic(path, raw, stripped, &file_findings);
  CheckUnboundedWait(path, raw, stripped, &file_findings);
  CheckRawMutex(path, raw, stripped, &file_findings);
  CheckTlsRedirectPairing(path, raw, stripped, &file_findings);
  CheckTsaEscape(path, raw, stripped, &file_findings, justified_escapes);
  for (Finding& f : file_findings) {
    f.path = arg_path;  // report the real file, even under pretend-path
    findings->push_back(std::move(f));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: lsdb_lint <file>...\n");
    return 2;
  }
  std::vector<Finding> findings;
  size_t justified_escapes = 0;
  bool io_ok = true;
  for (int i = 1; i < argc; ++i) {
    io_ok = LintFile(argv[i], &findings, &justified_escapes) && io_ok;
  }
  for (const Finding& f : findings) {
    std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line,
                f.rule.c_str(), f.message.c_str());
  }
  if (justified_escapes > 0) {
    std::fprintf(stderr,
                 "lsdb_lint: %zu justified thread-safety-analysis "
                 "escape(s)\n",
                 justified_escapes);
  }
  if (!io_ok) return 2;
  if (!findings.empty()) {
    std::fprintf(stderr, "lsdb_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
