#!/usr/bin/env bash
# Builds the project, runs the full test suite, and regenerates every
# table/figure of the paper plus the ablations. Outputs are written to
# test_output.txt and bench_output.txt in the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

(for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b"
  echo
done) 2>&1 | tee bench_output.txt
