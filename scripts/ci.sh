#!/usr/bin/env bash
# CI entry point.
#
# Tier 1: configure, build, and run the full test suite.
# Tier 2: rebuild with ThreadSanitizer (-DLSDB_SAN=thread) and re-run the
#         concurrency-sensitive tests — the query service, worker pool, and
#         buffer pool — which must report zero races.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

cmake -B build-tsan -S . -DLSDB_SAN=thread
cmake --build build-tsan -j"${JOBS}" --target lsdb_tests
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lsdb_tests \
  --gtest_filter='QueryServiceTest.*:WorkerPoolTest.*:BufferPoolTest.*'

echo "ci: all checks passed"
