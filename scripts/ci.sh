#!/usr/bin/env bash
# CI entry point.
#
# Tier 0: scripts/lint.sh — clang-tidy (when installed), the lsdb_lint
#         domain rules, and clang-format --dry-run (when installed).
#         Fails fast: nothing else runs on a lint violation.
# Tier 1: configure with -DLSDB_WERROR=ON (warnings are errors, which
#         also hardens the [[nodiscard]] Status discipline into a build
#         break), build, and run the full test suite.
# Tier 2: rebuild with ThreadSanitizer (-DLSDB_SAN=thread) and re-run the
#         ENTIRE ctest suite (the lock-order verifier is armed in this
#         build too, so TSan races and acquisition-order inversions are
#         caught in the same pass), which must report zero races. The
#         `concurrency` ctest label marks the suites that exercise
#         cross-thread behavior for local selection (ctest -L
#         concurrency); CI runs everything.
# Tier 2b: rebuild with AddressSanitizer (-DLSDB_SAN=address) and run the
#         `needs-disk` ctest label — checksums, corruption round trips,
#         retries, breaker trips, the snapshot round-trip and
#         corrupt-snapshot suites (hostile *.lsnap files, snapshot
#         serving under the fault injector), and the concurrent
#         robustness suite — which must report zero memory errors even
#         while pages are corrupted and reads fail. Test selection lives
#         in tests/CMakeLists.txt as labels, not in hard-coded filter
#         lists here.
# Tier 2c: rebuild with UndefinedBehaviorSanitizer (-DLSDB_SAN=undefined,
#         which also enables the float checks GCC leaves out of the
#         default group and compiles every hit as non-recoverable) and
#         re-run the ENTIRE ctest suite. halt_on_error turns any UB into
#         a test failure.
# Tier 2d: rebuild with -DLSDB_SIMD=off (every kernel call pinned to the
#         scalar oracle) and run the SIMD differential/equivalence, scan-
#         cache, throughput-mode, and paper-equivalence suites — the same
#         tests the default (native-dispatch) build already ran in Tier 1,
#         so the suites execute with vectorization both on and off.
# Tier 3: smoke-run the machine-readable benches — service observability
#         (BENCH_service.json), bulk build (BENCH_build.json, whose exit
#         status already enforces bulk-vs-incremental equivalence),
#         snapshot cold-start (BENCH_snapshot.json, >=10x speedup
#         enforced), query-path introspection (BENCH_introspect.json),
#         the overload sweep (BENCH_overload.json, whose exit status
#         already enforces the bounded-p99 and accounting invariants at
#         3x saturation), and the SIMD/throughput-mode bench
#         (BENCH_simd.json, whose exit status enforces per-ISA scalar
#         equivalence and default-vs-throughput response identity).
# Tier 4: scripts/check_bench.py validates every generated BENCH_*.json
#         against its schema and gates tracked throughput/latency metrics
#         (service qps/p99, snapshot qps) against the committed baselines
#         in the repo root: a >25% regression fails the build.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

./scripts/lint.sh

cmake -B build -S . -DLSDB_WERROR=ON
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

cmake -B build-tsan -S . -DLSDB_SAN=thread
cmake --build build-tsan -j"${JOBS}"
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-tsan --output-on-failure -j"${JOBS}"

cmake -B build-asan -S . -DLSDB_SAN=address
cmake --build build-asan -j"${JOBS}" --target lsdb_tests
ASAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir build-asan --output-on-failure -j"${JOBS}" -L needs-disk

cmake -B build-scalar -S . -DLSDB_SIMD=off
cmake --build build-scalar -j"${JOBS}" --target lsdb_tests
./build-scalar/tests/lsdb_tests \
  --gtest_filter='SimdTest.*:ScanCacheTest.*:ThroughputModeTest.*:Equivalence*:ExperimentTest.*'

cmake -B build-ubsan -S . -DLSDB_SAN=undefined
cmake --build build-ubsan -j"${JOBS}"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-ubsan --output-on-failure -j"${JOBS}"

./build/bench/bench_service_observability Charles 2000 build/BENCH_service.json 4
./build/bench/bench_bulk_build --smoke Charles build/BENCH_build.json
./build/bench/bench_snapshot_start --smoke Charles build/BENCH_snapshot.json 4
./build/bench/bench_introspect Charles 500 build/BENCH_introspect.json 4
./build/bench/bench_overload --smoke Charles build/BENCH_overload.json 2
./build/bench/bench_simd --smoke Charles 400 build/BENCH_simd.json

python3 scripts/check_bench.py --dir build --baseline .

echo "ci: all checks passed"
