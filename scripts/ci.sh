#!/usr/bin/env bash
# CI entry point.
#
# Tier 0: scripts/lint.sh — clang-tidy (when installed), the lsdb_lint
#         domain rules, and clang-format --dry-run (when installed).
#         Fails fast: nothing else runs on a lint violation.
# Tier 1: configure with -DLSDB_WERROR=ON (warnings are errors, which
#         also hardens the [[nodiscard]] Status discipline into a build
#         break), build, and run the full test suite.
# Tier 2: rebuild with ThreadSanitizer (-DLSDB_SAN=thread) and re-run the
#         concurrency-sensitive tests — the query service, worker pool,
#         buffer pool, the observability layer (sharded histograms,
#         tracer, registry), and the robustness suite (concurrent batches
#         with injected faults) — which must report zero races.
# Tier 2b: rebuild with AddressSanitizer (-DLSDB_SAN=address) and run the
#         fault-injection suite — checksums, corruption round trips,
#         retries, breaker trips — which must report zero memory errors
#         even while pages are corrupted and reads fail. The snapshot
#         round-trip and corrupt-snapshot suites (hostile *.lsnap files,
#         snapshot serving under the fault injector) run here too: mmap
#         serving must stay memory-clean while its pages are damaged.
# Tier 2c: rebuild with UndefinedBehaviorSanitizer (-DLSDB_SAN=undefined,
#         which also enables the float checks GCC leaves out of the
#         default group and compiles every hit as non-recoverable) and
#         re-run the ENTIRE ctest suite. halt_on_error turns any UB into
#         a test failure.
# Tier 3: smoke-run the service observability bench and validate its
#         machine-readable BENCH_service.json against the minimal schema,
#         robustness keys included; smoke-run the bulk-build bench —
#         whose exit status already enforces bulk-vs-incremental query
#         equivalence and invariants — and validate BENCH_build.json;
#         smoke-run the snapshot cold-start bench — whose exit status
#         enforces the >=10x service-ready speedup and snapshot-vs-built
#         response equivalence — and validate BENCH_snapshot.json.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

./scripts/lint.sh

cmake -B build -S . -DLSDB_WERROR=ON
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

cmake -B build-tsan -S . -DLSDB_SAN=thread
cmake --build build-tsan -j"${JOBS}" --target lsdb_tests
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/lsdb_tests \
  --gtest_filter='QueryServiceTest.*:WorkerPoolTest.*:BufferPoolTest.*:LatencyHistogramTest.*:TracerTest.*:StatsRegistryTest.*:ServiceObsTest.*:ServiceRobustnessTest.*'

cmake -B build-asan -S . -DLSDB_SAN=address
cmake --build build-asan -j"${JOBS}" --target lsdb_tests
ASAN_OPTIONS="halt_on_error=1" ./build-asan/tests/lsdb_tests \
  --gtest_filter='Crc32cTest.*:PageChecksumTest.*:StorageFaultTest.*:PoolRetryTest.*:FaultInjectionTest.*:ServiceRobustnessTest.*:*OnDiskCorruptionIsTypedNotFatal*:BulkLoadTest.*:SnapshotTest.*:SnapshotCorruptionTest.*:SnapshotFaultTest.*'

cmake -B build-ubsan -S . -DLSDB_SAN=undefined
cmake --build build-ubsan -j"${JOBS}"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir build-ubsan --output-on-failure -j"${JOBS}"

./build/bench/bench_service_observability Charles 2000 build/BENCH_service.json 4
python3 - <<'EOF'
import json
doc = json.load(open("build/BENCH_service.json"))
for key in ("bench", "county", "segments", "threads", "batch",
            "trace_lines", "structures", "segment_pool_hit_ratio"):
    assert key in doc, f"BENCH_service.json missing key: {key}"
assert doc["bench"] == "service_observability"
assert len(doc["structures"]) == 3, "expected R*, R+, PMR entries"
for s in doc["structures"]:
    for key in ("index", "queries", "qps", "p50_ns", "p90_ns", "p99_ns",
                "max_ns", "hit_ratio", "faults_injected", "io_retries",
                "checksum_failures", "degraded"):
        assert key in s, f"structure entry missing key: {key}"
    assert s["queries"] > 0 and s["qps"] > 0
    assert s["p50_ns"] <= s["p90_ns"] <= s["p99_ns"] <= s["max_ns"]
    assert 0.0 <= s["hit_ratio"] <= 1.0
    # Default bench run injects nothing: counters must be zero and the
    # service healthy.
    assert s["faults_injected"] == 0 and s["checksum_failures"] == 0
    assert s["degraded"] is False
for line in open("build/BENCH_service.json.trace.jsonl"):
    json.loads(line)
print("BENCH_service.json schema ok")
EOF

./build/bench/bench_bulk_build --smoke Charles build/BENCH_build.json
python3 - <<'EOF'
import json
doc = json.load(open("build/BENCH_build.json"))
for key in ("bench", "county", "segments", "smoke", "structures"):
    assert key in doc, f"BENCH_build.json missing key: {key}"
assert doc["bench"] == "bulk_build"
assert doc["smoke"] is True and doc["segments"] > 0
assert [s["index"] for s in doc["structures"]] == ["R*", "R+", "PMR"]
for s in doc["structures"]:
    for key in ("incremental", "bulk", "speedup", "equivalent",
                "invariants_ok"):
        assert key in s, f"structure entry missing key: {key}"
    for side in (s["incremental"], s["bulk"]):
        for key in ("seconds", "disk_accesses", "pages", "height",
                    "avg_occupancy"):
            assert key in side, f"build side missing key: {key}"
        assert side["pages"] > 0 and side["height"] >= 1
    # The bench exits nonzero on failed checks; assert anyway so a stale
    # file cannot pass.
    assert s["equivalent"] is True and s["invariants_ok"] is True
print("BENCH_build.json schema ok")
EOF

./build/bench/bench_snapshot_start --smoke Charles build/BENCH_snapshot.json 4
python3 - <<'EOF'
import json
doc = json.load(open("build/BENCH_snapshot.json"))
for key in ("bench", "county", "segments", "smoke", "threads",
            "build_seconds", "snapshot_write_seconds", "snapshot_bytes",
            "snapshot_open_mmap_seconds", "snapshot_open_pool_seconds",
            "speedup", "mmap_qps", "pool_qps", "equivalent"):
    assert key in doc, f"BENCH_snapshot.json missing key: {key}"
assert doc["bench"] == "snapshot_start"
assert doc["smoke"] is True and doc["segments"] > 0
assert doc["snapshot_bytes"] > 0
assert doc["snapshot_open_mmap_seconds"] > 0
# The bench exits nonzero on failed checks; assert anyway so a stale file
# cannot pass.
assert doc["speedup"] >= 10.0, f"cold-start speedup {doc['speedup']} < 10x"
assert doc["equivalent"] is True
assert doc["mmap_qps"] > 0 and doc["pool_qps"] > 0
print("BENCH_snapshot.json schema ok")
EOF

echo "ci: all checks passed"
