#!/usr/bin/env python3
"""Validate BENCH_*.json artifacts and gate performance regressions.

Standard library only. Two jobs:

1. Schema validation: every BENCH_*.json in --dir is checked against the
   schema for its "bench" kind (required keys, value sanity, internal
   invariants like bulk-vs-incremental equivalence). Unknown bench kinds
   only need to parse and carry a "bench" key.

2. Regression gate: for tracked throughput/latency metrics, the fresh
   value is compared against the committed baseline of the same file name
   in --baseline (the repo root). A throughput metric (qps) may not drop
   more than --threshold (default 25%) below baseline; a latency metric
   (p99_ns) may not rise more than --threshold above it. Missing baseline
   files skip the gate with a note, so bootstrap runs pass.

Exit status: 0 all good, 1 any schema or regression failure.

Usage (as wired in scripts/ci.sh, after the smoke benches):
    python3 scripts/check_bench.py --dir build --baseline .
"""

import argparse
import glob
import json
import os
import sys

FAILURES = []


def fail(msg):
    FAILURES.append(msg)
    print(f"check_bench: FAIL: {msg}", file=sys.stderr)


def require(doc, keys, where):
    for key in keys:
        if key not in doc:
            fail(f"{where}: missing key {key!r}")
            return False
    return True


def check_service(doc, path):
    if not require(doc, ("bench", "county", "segments", "threads", "batch",
                         "trace_lines", "structures",
                         "segment_pool_hit_ratio"), path):
        return
    if len(doc["structures"]) != 3:
        fail(f"{path}: expected R*, R+, PMR entries")
    for s in doc["structures"]:
        where = f"{path} structure {s.get('index', '?')}"
        if not require(s, ("index", "queries", "qps", "p50_ns", "p90_ns",
                           "p99_ns", "max_ns", "hit_ratio",
                           "faults_injected", "io_retries",
                           "checksum_failures", "degraded"), where):
            continue
        if not (s["queries"] > 0 and s["qps"] > 0):
            fail(f"{where}: nonpositive queries/qps")
        if not (s["p50_ns"] <= s["p90_ns"] <= s["p99_ns"] <= s["max_ns"]):
            fail(f"{where}: percentiles not monotone")
        if not (0.0 <= s["hit_ratio"] <= 1.0):
            fail(f"{where}: hit_ratio out of range")
        # The default bench run injects nothing: counters must be zero and
        # the service healthy.
        if s["faults_injected"] != 0 or s["checksum_failures"] != 0:
            fail(f"{where}: unexpected fault counters in fault-free run")
        if s["degraded"] is not False:
            fail(f"{where}: degraded in fault-free run")
    trace = path + ".trace.jsonl"
    if os.path.exists(trace):
        with open(trace) as fh:
            for i, line in enumerate(fh):
                try:
                    json.loads(line)
                except ValueError:
                    fail(f"{trace}:{i + 1}: invalid JSONL")
                    break


def check_build(doc, path):
    if not require(doc, ("bench", "county", "segments", "smoke",
                         "structures"), path):
        return
    if [s.get("index") for s in doc["structures"]] != ["R*", "R+", "PMR"]:
        fail(f"{path}: expected R*, R+, PMR entries in order")
    for s in doc["structures"]:
        where = f"{path} structure {s.get('index', '?')}"
        if not require(s, ("incremental", "bulk", "speedup", "equivalent",
                           "invariants_ok"), where):
            continue
        for name in ("incremental", "bulk"):
            side = s[name]
            if not require(side, ("seconds", "disk_accesses", "pages",
                                  "height", "avg_occupancy"),
                           f"{where} {name}"):
                continue
            if not (side["pages"] > 0 and side["height"] >= 1):
                fail(f"{where} {name}: implausible pages/height")
        # The bench exits nonzero on failed checks; assert anyway so a
        # stale file cannot pass.
        if s["equivalent"] is not True or s["invariants_ok"] is not True:
            fail(f"{where}: equivalence/invariants not confirmed")


def check_snapshot(doc, path):
    if not require(doc, ("bench", "county", "segments", "smoke", "threads",
                         "build_seconds", "snapshot_write_seconds",
                         "snapshot_bytes", "snapshot_open_mmap_seconds",
                         "snapshot_open_pool_seconds", "speedup",
                         "mmap_qps", "pool_qps", "equivalent"), path):
        return
    if doc["snapshot_bytes"] <= 0 or doc["snapshot_open_mmap_seconds"] <= 0:
        fail(f"{path}: implausible snapshot size/open time")
    if doc["speedup"] < 10.0:
        fail(f"{path}: cold-start speedup {doc['speedup']} < 10x")
    if doc["equivalent"] is not True:
        fail(f"{path}: snapshot-vs-built responses not equivalent")
    if not (doc["mmap_qps"] > 0 and doc["pool_qps"] > 0):
        fail(f"{path}: nonpositive qps")


def check_introspect(doc, path):
    if not require(doc, ("bench", "county", "segments", "threads",
                         "queries_per_kind", "structures"), path):
        return
    if [s.get("index") for s in doc["structures"]] != ["R*", "R+", "PMR"]:
        fail(f"{path}: expected R*, R+, PMR entries in order")
    kinds = ["point", "window", "nearest", "incident"]
    for s in doc["structures"]:
        where = f"{path} structure {s.get('index', '?')}"
        if not require(s, ("index", "profiles", "xray", "page_heat"), where):
            continue
        if [p.get("kind") for p in s["profiles"]] != kinds:
            fail(f"{where}: expected one profile per query kind in order")
            continue
        for p in s["profiles"]:
            pwhere = f"{where} kind {p.get('kind', '?')}"
            if not require(p, ("queries", "nodes_visited", "nodes_per_query",
                               "false_leaf_read_rate",
                               "false_bucket_read_rate", "prune_rate",
                               "levels"), pwhere):
                continue
            if p["queries"] <= 0 or p["nodes_visited"] <= 0:
                fail(f"{pwhere}: empty profile (introspection off?)")
            for rate in ("false_leaf_read_rate", "false_bucket_read_rate",
                         "prune_rate"):
                if not (0.0 <= p[rate] <= 1.0):
                    fail(f"{pwhere}: {rate} out of [0, 1]")
        xray = s["xray"]
        if require(xray, ("structure", "pages", "height", "leaf",
                          "internal"), f"{where} xray"):
            if s["index"] == "R*" and "overlap_ratio" not in xray:
                fail(f"{where}: R* xray missing overlap_ratio")
            if s["index"] == "R+" and "duplication_factor" not in xray:
                fail(f"{where}: R+ xray missing duplication_factor")
            if s["index"] == "PMR" and "quad_depths" not in xray:
                fail(f"{where}: PMR xray missing quad_depths")
        require(s["page_heat"], ("pages", "pages_touched", "accesses",
                                 "top"), f"{where} page_heat")


def check_overload(doc, path):
    if not require(doc, ("bench", "county", "segments", "smoke", "threads",
                         "policy", "latency_injected_us", "capacity_qps",
                         "unloaded_p99_ns", "deadline_ns", "sweep",
                         "p99_bound_ns", "p99_at_3x_ns", "bounded",
                         "accounted"), path):
        return
    if doc["policy"] not in ("fifo", "lifo", "codel"):
        fail(f"{path}: unknown policy {doc['policy']!r}")
    if not (doc["capacity_qps"] > 0 and doc["deadline_ns"] > 0):
        fail(f"{path}: nonpositive capacity/deadline")
    sweep = doc["sweep"]
    if [p.get("load_factor") for p in sweep] != [0.5, 1.0, 2.0, 3.0]:
        fail(f"{path}: expected sweep at 0.5/1/2/3x capacity")
        return
    for p in sweep:
        where = f"{path} load {p.get('load_factor', '?')}x"
        if not require(p, ("offered_qps", "submitted", "ok", "shed",
                           "timeout", "cancelled", "goodput_qps",
                           "admitted_p50_ns", "admitted_p99_ns"), where):
            continue
        # The accounting contract: every submitted query completes exactly
        # once as success, shed, timeout, or cancellation.
        total = p["ok"] + p["shed"] + p["timeout"] + p["cancelled"]
        if total != p["submitted"]:
            fail(f"{where}: {total} outcomes != {p['submitted']} submitted")
        if p["ok"] > 0 and p["goodput_qps"] <= 0:
            fail(f"{where}: nonpositive goodput with successes")
        if p["admitted_p50_ns"] > p["admitted_p99_ns"]:
            fail(f"{where}: p50 > p99")
    # Past saturation the layer must actually protect itself: some load is
    # shed or timed out, and successes still flow.
    overload = sweep[-1]
    if overload["shed"] + overload["timeout"] == 0:
        fail(f"{path}: no shedding/timeouts at 3x capacity")
    if overload["ok"] == 0:
        fail(f"{path}: zero goodput at 3x capacity")
    if doc["bounded"] is not True:
        fail(f"{path}: admitted p99 not bounded at 3x capacity "
             f"({doc['p99_at_3x_ns']} > {doc['p99_bound_ns']} ns)")
    if doc["accounted"] is not True:
        fail(f"{path}: query accounting did not balance")


def check_simd(doc, path):
    if not require(doc, ("bench", "county", "segments", "smoke", "threads",
                         "queries", "isa", "isas_verified", "structures",
                         "equivalent", "speedup_ok"), path):
        return
    if doc["threads"] != 1:
        fail(f"{path}: simd bench must be single-threaded")
    if not doc["isas_verified"]:
        fail(f"{path}: no ISA verified against the scalar kernel")
    order_ok = [s.get("index") for s in doc["structures"]] == ["R*", "R+"]
    if not order_ok:
        fail(f"{path}: expected R*, R+ entries in order")
    for s in doc["structures"]:
        where = f"{path} structure {s.get('index', '?')}"
        if not require(s, ("index", "range_qps_default",
                           "range_qps_throughput", "range_speedup",
                           "nearest_qps_default", "nearest_qps_throughput",
                           "equivalent"), where):
            continue
        for key in ("range_qps_default", "range_qps_throughput",
                    "nearest_qps_default", "nearest_qps_throughput"):
            if not s[key] > 0:
                fail(f"{where}: nonpositive {key}")
        if s["equivalent"] is not True:
            fail(f"{where}: throughput-mode responses not equivalent")
    if doc["equivalent"] is not True:
        fail(f"{path}: equivalence not confirmed")
    # Acceptance gate for committed artifacts: smoke runs only validate
    # plumbing, a real run must show the 2x single-thread Range speedup on
    # R* (the bench itself exits nonzero when it is missed).
    if not doc["smoke"]:
        if doc["speedup_ok"] is not True:
            fail(f"{path}: speedup gate not confirmed")
        if order_ok and doc["structures"][0].get("range_speedup", 0) < 2.0:
            fail(f"{path}: R* range speedup "
                 f"{doc['structures'][0].get('range_speedup')} < 2x")


CHECKERS = {
    "service_observability": check_service,
    "bulk_build": check_build,
    "snapshot_start": check_snapshot,
    "introspect": check_introspect,
    "overload": check_overload,
    "simd": check_simd,
}

# Tracked regression metrics: (bench kind, extractor) -> {label: value}.
# "hi" metrics are throughput (must not drop); "lo" metrics are latency
# (must not rise).


def tracked_metrics(doc):
    kind = doc.get("bench")
    out = {}
    if kind == "service_observability":
        for s in doc.get("structures", []):
            idx = s.get("index", "?")
            out[f"{idx}.qps"] = ("hi", s.get("qps"))
            out[f"{idx}.p99_ns"] = ("lo", s.get("p99_ns"))
    elif kind == "snapshot_start":
        out["mmap_qps"] = ("hi", doc.get("mmap_qps"))
        out["pool_qps"] = ("hi", doc.get("pool_qps"))
    elif kind == "overload":
        # Capacity is the stable cross-run metric; the sweep's absolute
        # latencies are deadline-relative and jitter-dominated on shared
        # runners, so they are schema-checked but not regression-gated.
        out["capacity_qps"] = ("hi", doc.get("capacity_qps"))
    elif kind == "simd":
        for s in doc.get("structures", []):
            idx = s.get("index", "?")
            out[f"{idx}.range_qps_throughput"] = \
                ("hi", s.get("range_qps_throughput"))
            out[f"{idx}.nearest_qps_throughput"] = \
                ("hi", s.get("nearest_qps_throughput"))
    return {k: v for k, v in out.items() if v[1] is not None}


def check_regression(cur_doc, base_doc, name, threshold):
    cur = tracked_metrics(cur_doc)
    base = tracked_metrics(base_doc)
    for key, (direction, base_val) in base.items():
        if base_val in (None, 0):
            continue
        if key not in cur:
            # A tracked metric that vanishes from the fresh artifact is a
            # regression in itself — silently skipping it would let a bench
            # drop the very field the gate watches.
            fail(f"{name}: tracked metric {key} missing from fresh run "
                 f"(baseline {base_val:.6g})")
            continue
        cur_val = cur[key][1]
        if direction == "hi" and cur_val < base_val * (1.0 - threshold):
            fail(f"{name}: {key} regressed {base_val:.6g} -> {cur_val:.6g} "
                 f"(>{threshold:.0%} drop)")
        elif direction == "lo" and cur_val > base_val * (1.0 + threshold):
            fail(f"{name}: {key} regressed {base_val:.6g} -> {cur_val:.6g} "
                 f"(>{threshold:.0%} rise)")


def self_test():
    """Fixture check of the gate's directionality: for every tracked-metric
    direction, an improvement must pass and a regression must fail."""
    base = {"bench": "service_observability",
            "structures": [{"index": "R*", "qps": 100.0, "p99_ns": 1000.0}]}

    def svc(qps, p99):
        return {"bench": "service_observability",
                "structures": [{"index": "R*", "qps": qps, "p99_ns": p99}]}

    cases = [
        # (label, fresh doc, expected gate failures at threshold 0.25)
        ("hi-metric improvement passes", svc(200.0, 1000.0), 0),
        ("lo-metric improvement passes", svc(100.0, 500.0), 0),
        ("within-threshold drift passes", svc(80.0, 1200.0), 0),
        ("hi-metric regression fails", svc(50.0, 1000.0), 1),
        ("lo-metric regression fails", svc(100.0, 2000.0), 1),
        ("both-direction regression fails", svc(50.0, 2000.0), 2),
        ("missing tracked metric fails",
         {"bench": "service_observability",
          "structures": [{"index": "R*", "qps": 100.0}]}, 1),
    ]
    ok = True
    for label, cur, want in cases:
        del FAILURES[:]
        check_regression(cur, base, label, 0.25)
        got = len(FAILURES)
        if got != want:
            ok = False
        print(f"check_bench: self-test [{label}] -> {got} gate failure(s), "
              f"expected {want}: {'ok' if got == want else 'MISMATCH'}")

    # Schema-checker fixtures for the bench kinds whose producing code
    # paths run through the concurrency layer (worker pool, buffer pool,
    # admission): a minimal valid document must pass clean, and each
    # invariant the checker claims to enforce must actually fire.
    def svc_struct(idx):
        return {"index": idx, "queries": 10, "qps": 1.0, "p50_ns": 1,
                "p90_ns": 2, "p99_ns": 3, "max_ns": 4, "hit_ratio": 0.5,
                "faults_injected": 0, "io_retries": 0,
                "checksum_failures": 0, "degraded": False}

    def svc_doc(**over):
        doc = {"bench": "service_observability", "county": "X",
               "segments": 1, "threads": 1, "batch": 1, "trace_lines": 0,
               "segment_pool_hit_ratio": 0.5,
               "structures": [svc_struct("R*"), svc_struct("R+"),
                              svc_struct("PMR")]}
        doc.update(over)
        return doc

    svc_bad_pct = svc_doc()
    svc_bad_pct["structures"][0]["p50_ns"] = 99  # > p99
    svc_bad_degraded = svc_doc()
    svc_bad_degraded["structures"][1]["degraded"] = True
    svc_missing_qps = svc_doc()
    del svc_missing_qps["structures"][2]["qps"]

    def ovl_point(lf):
        return {"load_factor": lf, "offered_qps": 10.0, "submitted": 100,
                "ok": 80, "shed": 10, "timeout": 5, "cancelled": 5,
                "goodput_qps": 8.0, "admitted_p50_ns": 10,
                "admitted_p99_ns": 20}

    def ovl_doc(**over):
        doc = {"bench": "overload", "county": "X", "segments": 1,
               "smoke": True, "threads": 2, "policy": "codel",
               "latency_injected_us": 0, "capacity_qps": 10.0,
               "unloaded_p99_ns": 5, "deadline_ns": 100,
               "sweep": [ovl_point(0.5), ovl_point(1.0), ovl_point(2.0),
                         ovl_point(3.0)],
               "p99_bound_ns": 100, "p99_at_3x_ns": 50, "bounded": True,
               "accounted": True}
        doc.update(over)
        return doc

    ovl_bad_accounting = ovl_doc()
    ovl_bad_accounting["sweep"][3]["ok"] = 81  # outcomes != submitted
    ovl_bad_policy = ovl_doc(policy="random")

    schema_cases = [
        ("service schema valid", check_service, svc_doc(), 0),
        ("service non-monotone percentiles fail", check_service,
         svc_bad_pct, 1),
        ("service degraded in fault-free run fails", check_service,
         svc_bad_degraded, 1),
        ("service missing qps fails", check_service, svc_missing_qps, 1),
        ("overload schema valid", check_overload, ovl_doc(), 0),
        ("overload unbalanced accounting fails", check_overload,
         ovl_bad_accounting, 1),
        ("overload unknown policy fails", check_overload, ovl_bad_policy, 1),
        ("overload unbounded p99 fails", check_overload,
         ovl_doc(bounded=False), 1),
    ]
    for label, checker, doc, want in schema_cases:
        del FAILURES[:]
        checker(doc, label)
        got = len(FAILURES)
        if got != want:
            ok = False
        print(f"check_bench: self-test [{label}] -> {got} schema "
              f"failure(s), expected {want}: "
              f"{'ok' if got == want else 'MISMATCH'}")
    del FAILURES[:]
    if not ok:
        print("check_bench: self-test FAILED", file=sys.stderr)
        return 1
    print("check_bench: self-test ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--dir", default="build",
                    help="directory holding freshly generated BENCH_*.json")
    ap.add_argument("--baseline", default=".",
                    help="directory holding committed baseline BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the gate-direction fixtures and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    paths = sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json")))
    if not paths:
        fail(f"no BENCH_*.json found in {args.dir}")
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except ValueError as e:
            fail(f"{path}: invalid JSON: {e}")
            continue
        if "bench" not in doc:
            fail(f"{path}: missing 'bench' key")
            continue
        checker = CHECKERS.get(doc["bench"])
        if checker is not None:
            checker(doc, path)
            print(f"check_bench: {name} schema ok ({doc['bench']})")
        else:
            print(f"check_bench: {name} parsed (unknown kind "
                  f"{doc['bench']!r}; schema not enforced)")

        base_path = os.path.join(args.baseline, name)
        if not os.path.exists(base_path) or os.path.samefile(
                os.path.dirname(path) or ".", args.baseline):
            print(f"check_bench: {name} no committed baseline; "
                  "regression gate skipped")
            continue
        try:
            with open(base_path) as fh:
                base_doc = json.load(fh)
        except ValueError as e:
            fail(f"{base_path}: invalid baseline JSON: {e}")
            continue
        if tracked_metrics(base_doc):
            before = len(FAILURES)
            check_regression(doc, base_doc, name, args.threshold)
            if len(FAILURES) == before:
                print(f"check_bench: {name} within {args.threshold:.0%} "
                      "of baseline")

    if FAILURES:
        print(f"check_bench: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("check_bench: all artifacts ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
