#!/usr/bin/env bash
# Static-analysis gate. Four stages, fail-fast:
#
#   1. clang-tidy (.clang-tidy profile, warnings as errors) over every TU
#      in src/, bench/, tests/, examples/ — skipped with a notice when the
#      toolchain has no clang-tidy; the domain linter below still runs.
#   2. tools/lsdb_lint — the always-on domain rules (ignored Status, page
#      casts, assert-on-disk, counter mutation, determinism, raw mutexes,
#      TLS redirect pairing, TSA escape justification). Builds with the
#      standard library only, so this stage has no optional deps.
#   3. clang++ -fsyntax-only -Wthread-safety -Werror over every library TU
#      — the compile-time concurrency contract check (GUARDED_BY /
#      REQUIRES / EXCLUDES annotations from util/thread_annotations.h).
#      Skipped with a notice when the toolchain has no clang++; the
#      annotations compile to nothing elsewhere, so this stage is the
#      only one that can see them.
#   4. clang-format --dry-run — skipped with a notice when absent.
#
# Exit status: nonzero on the first stage that finds a violation.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

# compile_commands.json for clang-tidy; lsdb_lint needs only the binary.
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
cmake --build build -j"${JOBS}" --target lsdb_lint

mapfile -t LINT_FILES < <(git ls-files \
    'src/*.cc' 'src/*.h' 'bench/*.cc' 'bench/*.h' \
    'tests/*.cc' 'tests/*.h' 'examples/*.cc' 'tools/*.cc' \
    ':(exclude)tools/lint_fixtures/*')

if command -v clang-tidy > /dev/null 2>&1; then
  mapfile -t TIDY_TUS < <(git ls-files \
      'src/*.cc' 'bench/*.cc' 'tests/*.cc' 'examples/*.cc')
  clang-tidy -p build --quiet "${TIDY_TUS[@]}"
  echo "lint: clang-tidy clean"
else
  echo "lint: clang-tidy not installed; skipped (lsdb_lint still enforced)"
fi

./build/tools/lsdb_lint "${LINT_FILES[@]}"
echo "lint: lsdb_lint clean"

if command -v clang++ > /dev/null 2>&1; then
  # Thread-safety analysis is a Clang-only pass; -fsyntax-only keeps it
  # cheap (no codegen) and independent of the GCC build tree. The lock
  # debug registry is irrelevant to the static analysis, so pin it off
  # for a stable TU surface.
  mapfile -t TSA_TUS < <(git ls-files 'src/*.cc')
  clang++ -fsyntax-only -std=c++20 -Isrc -DLSDB_LOCK_DEBUG=0 \
      -Wthread-safety -Wthread-safety-beta -Werror "${TSA_TUS[@]}"
  echo "lint: clang thread-safety clean"
else
  echo "lint: clang++ not installed; thread-safety analysis skipped" \
       "(annotations are no-ops on this toolchain)"
fi

if command -v clang-format > /dev/null 2>&1; then
  clang-format --dry-run -Werror "${LINT_FILES[@]}"
  echo "lint: clang-format clean"
else
  echo "lint: clang-format not installed; skipped"
fi

echo "lint: ok"
