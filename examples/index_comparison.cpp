// Index comparison: build all four structures (R*-tree, R+-tree, PMR
// quadtree, uniform grid) over the same road network and compare storage
// and query costs — a miniature of the paper's whole experiment.
//
//   $ ./examples/index_comparison [county]
//
// Counties: AnneArundel, Baltimore, Cecil, Charles, Garrett, Washington
// (defaults to a reduced-size map for a fast run).

#include <cstdio>
#include <memory>

#include "lsdb/data/county_generator.h"
#include "lsdb/grid/uniform_grid.h"
#include "lsdb/harness/experiment.h"
#include "lsdb/pmr/pmr_quadtree.h"

using namespace lsdb;  // NOLINT

int main(int argc, char** argv) {
  PolygonalMap map;
  if (argc > 1) {
    for (const CountyProfile& p : MarylandProfiles()) {
      if (p.name == argv[1]) map = GenerateCounty(p, 14);
    }
    if (map.segments.empty()) {
      std::fprintf(stderr, "unknown county %s\n", argv[1]);
      return 1;
    }
  } else {
    CountyProfile p;
    p.name = "demo";
    p.lattice = 28;
    p.meander_steps = 5;
    p.seed = 11;
    map = GenerateCounty(p, 14);
  }
  std::printf("map %s: %zu segments\n\n", map.name.c_str(),
              map.segments.size());

  ExperimentOptions opt;
  opt.include_grid = true;
  opt.num_queries = 300;
  Experiment exp(map, opt);
  if (!exp.BuildAll().ok()) return 1;

  std::printf("%-6s %10s %10s %8s %7s\n", "index", "size KB", "build da",
              "cpu s", "height");
  for (const BuildStats& bs : exp.build_stats()) {
    std::printf("%-6s %10.0f %10llu %8.2f %7u\n", StructureName(bs.kind),
                static_cast<double>(bs.bytes) / 1024.0,
                static_cast<unsigned long long>(bs.disk_accesses),
                bs.cpu_seconds, bs.height);
  }

  std::printf("\nper-query disk accesses (300 queries each):\n");
  std::printf("%-18s", "workload");
  const StructureKind kinds[] = {StructureKind::kRStar,
                                 StructureKind::kRPlus, StructureKind::kPmr,
                                 StructureKind::kGrid};
  for (StructureKind k : kinds) std::printf(" %8s", StructureName(k));
  std::printf("\n");
  for (Workload w : kAllWorkloads) {
    std::printf("%-18s", WorkloadName(w));
    for (StructureKind k : kinds) {
      QueryStats qs;
      if (!exp.RunWorkload(k, w, &qs).ok()) return 1;
      std::printf(" %8.2f", qs.disk_accesses);
    }
    std::printf("\n");
  }
  std::printf("\n(the structures return identical result sets; only their "
              "costs differ)\n");
  return 0;
}
