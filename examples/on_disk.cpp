// On-disk demo: the structures are genuinely disk-resident — this example
// backs the segment table and a PMR quadtree with real files (PosixPageFile
// / pread / pwrite) instead of the in-memory page file used by the
// benchmarks, builds the index, flushes it, then REOPENS both files in a
// second phase and queries without rebuilding (superblock persistence).
//
//   $ ./examples/on_disk [dir]

#include <cstdio>

#include "lsdb/data/county_generator.h"
#include "lsdb/pmr/pmr_quadtree.h"
#include "lsdb/seg/segment_table.h"

using namespace lsdb;  // NOLINT

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  CountyProfile profile;
  profile.name = "on-disk";
  profile.lattice = 20;
  profile.meander_steps = 5;
  profile.seed = 21;
  const PolygonalMap map = GenerateCounty(profile, 14);

  IndexOptions options;
  auto table_file =
      PosixPageFile::Create(dir + "/lsdb_segments.pages", options.page_size);
  auto index_file =
      PosixPageFile::Create(dir + "/lsdb_pmr.pages", options.page_size);
  if (!table_file.ok() || !index_file.ok()) {
    std::fprintf(stderr, "cannot create page files in %s\n", dir.c_str());
    return 1;
  }
  BufferPool table_pool(table_file->get(), options.buffer_frames, nullptr);
  SegmentTable table(&table_pool, nullptr);
  PmrQuadtree index(options, index_file->get(), &table);
  if (!index.Init().ok()) return 1;

  for (const Segment& s : map.segments) {
    auto id = table.Append(s);
    if (!id.ok() || !index.Insert(*id, s).ok()) return 1;
  }
  if (!index.Flush().ok() || !table_pool.FlushAll().ok()) return 1;
  std::printf("built on disk: %u index pages (%llu KB) + %u segment pages "
              "for %zu segments\n",
              (*index_file)->live_page_count(),
              static_cast<unsigned long long>(index.bytes() / 1024),
              (*table_file)->live_page_count(), map.segments.size());
  std::printf("disk accesses during build: %llu\n",
              static_cast<unsigned long long>(
                  index.metrics().disk_accesses()));

  std::vector<SegmentHit> hits;
  if (!index.WindowQueryEx(Rect::Of(4000, 4000, 4800, 4800), &hits).ok()) {
    return 1;
  }
  std::printf("window query over the on-disk index found %zu segments\n",
              hits.size());

  // Phase 2: drop everything and reopen from the files alone.
  if (!table.Flush().ok()) return 1;
  auto table_file2 =
      PosixPageFile::Open(dir + "/lsdb_segments.pages", options.page_size);
  auto index_file2 =
      PosixPageFile::Open(dir + "/lsdb_pmr.pages", options.page_size);
  if (!table_file2.ok() || !index_file2.ok()) return 1;
  BufferPool table_pool2(table_file2->get(), options.buffer_frames, nullptr);
  SegmentTable table2(&table_pool2, nullptr);
  if (!table2.Open().ok()) return 1;
  PmrQuadtree index2(options, index_file2->get(), &table2);
  const Status open_status = index2.Open();
  if (!open_status.ok()) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 open_status.ToString().c_str());
    return 1;
  }
  std::vector<SegmentHit> hits2;
  if (!index2.WindowQueryEx(Rect::Of(4000, 4000, 4800, 4800), &hits2).ok()) {
    return 1;
  }
  std::printf("reopened from disk without rebuilding: same window returns "
              "%zu segments (%s)\n",
              hits2.size(), hits2.size() == hits.size() ? "match" : "MISMATCH");
  return hits2.size() == hits.size() ? 0 : 1;
}
