// Query server demo: serve batches of mixed spatial queries from a worker
// pool over frozen copies of all three paper structures.
//
//   $ ./examples/query_server [county] [threads] [trace.jsonl]
//         [--snapshot-out file.lsnap | --snapshot-in file.lsnap]
//         [--admitted] [--deadline-ms N] [--policy fifo|lifo|codel]
//
// --snapshot-out serializes the freshly built service to a single-file
// snapshot after serving; --snapshot-in skips the build entirely and
// serves zero-copy from a mapped snapshot (instant start).
//
// --admitted re-serves the batch through the overload-protected path
// (SubmitQuery / bounded admission queue) with a per-query deadline of
// --deadline-ms (default 50) under the chosen shedding policy, then
// prints the admission scoreboard — the interactive twin of
// bench_overload.
//
// This is the serving-side counterpart to the sequential paper harness:
// the same R*-tree, R+-tree, and PMR quadtree, but built once, frozen
// read-only, and queried from N threads at once. The per-worker metric
// counters show how the paper's three cost measures distribute across the
// pool.
//
// After serving, the process dumps its stats registry in Prometheus text
// format — per-structure query counts, latency percentiles, and buffer
// pool hit ratios — exactly what a /metrics scrape endpoint would return.
// Pass a third argument to also write one JSONL trace span per query
// (plus sampled buffer-pool events) to that path.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lsdb/data/county_generator.h"
#include "lsdb/introspect/page_heat.h"
#include "lsdb/introspect/profiler.h"
#include "lsdb/introspect/xray.h"
#include "lsdb/service/query_service.h"
#include "lsdb/util/random.h"

using namespace lsdb;  // NOLINT

int main(int argc, char** argv) {
  std::string county = "Charles";
  uint32_t threads = 4;
  std::string trace_path;
  std::string snapshot_out, snapshot_in;
  // --introspect profiles every served query and attaches page-heat
  // counters, then dumps a /debug/introspect section after /metrics.
  bool introspect = false;
  // --admitted demos the overload-protected serving path (see header).
  bool admitted = false;
  uint64_t deadline_ms = 50;
  AdmissionOptions::Policy policy = AdmissionOptions::Policy::kCoDel;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--snapshot-out") == 0 && i + 1 < argc) {
      snapshot_out = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-in") == 0 && i + 1 < argc) {
      snapshot_in = argv[++i];
    } else if (std::strcmp(argv[i], "--introspect") == 0) {
      introspect = true;
    } else if (std::strcmp(argv[i], "--admitted") == 0) {
      admitted = true;
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = static_cast<uint64_t>(atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      const char* p = argv[++i];
      policy = std::strcmp(p, "fifo") == 0
                   ? AdmissionOptions::Policy::kFifoReject
                   : std::strcmp(p, "lifo") == 0
                         ? AdmissionOptions::Policy::kAdaptiveLifo
                         : AdmissionOptions::Policy::kCoDel;
    } else if (positional == 0) {
      county = argv[i];
      ++positional;
    } else if (positional == 1) {
      threads = static_cast<uint32_t>(atoi(argv[i]));
      ++positional;
    } else {
      trace_path = argv[i];
    }
  }

  // 1. Data: a synthetic TIGER-like county map.
  PolygonalMap map;
  for (const CountyProfile& p : MarylandProfiles()) {
    if (p.name == county) map = GenerateCounty(p, /*world_log2=*/14);
  }
  if (map.segments.empty()) {
    std::fprintf(stderr, "unknown county %s\n", county.c_str());
    return 1;
  }
  std::printf("%s county: %zu segments\n", county.c_str(),
              map.segments.size());

  // 2. Bring up the service: either build the segment table + three
  // indexes from the raw segments, or map a snapshot and skip every build.
  ServiceOptions opt;
  opt.num_threads = threads;
  opt.trace_path = trace_path;  // empty = tracing disabled (near-zero cost)
  opt.admission.policy = policy;
  opt.admission.default_deadline_ns = deadline_ms * 1'000'000;
  auto svc = snapshot_in.empty()
                 ? QueryService::Build(map, opt)
                 : QueryService::OpenFromSnapshot(snapshot_in, opt);
  if (!svc.ok()) {
    std::fprintf(stderr, "%s failed: %s\n",
                 snapshot_in.empty() ? "build" : "snapshot open",
                 svc.status().ToString().c_str());
    return 1;
  }
  std::printf("service up: %u worker threads, indexes frozen%s\n\n",
              (*svc)->num_threads(),
              (*svc)->from_snapshot() ? " (zero-copy from snapshot)" : "");
  if (introspect) {
    (*svc)->set_introspection(true);
    (*svc)->EnablePageHeat();
  }

  // 3. A mixed batch: point, window, nearest, and incident queries.
  Rng rng(7);
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 4000; ++i) {
    const Segment& s = map.segments[rng.Uniform(map.segments.size())];
    switch (i % 4) {
      case 0:
        batch.push_back(QueryRequest::PointQ(s.a));
        break;
      case 1: {
        const Coord x = static_cast<Coord>(rng.Uniform(16000));
        const Coord y = static_cast<Coord>(rng.Uniform(16000));
        batch.push_back(
            QueryRequest::WindowQ(Rect::Of(x, y, x + 400, y + 400)));
        break;
      }
      case 2:
        batch.push_back(QueryRequest::NearestQ(
            Point{static_cast<Coord>(rng.Uniform(16384)),
                  static_cast<Coord>(rng.Uniform(16384))}));
        break;
      default:
        batch.push_back(QueryRequest::IncidentQ(s.b));
        break;
    }
  }

  // 4. Serve the batch on each structure and report merged metrics.
  for (ServedIndex which : kAllServedIndexes) {
    auto res = (*svc)->ExecuteBatch(which, batch);
    if (!res.ok()) {
      std::fprintf(stderr, "batch failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    size_t hits = 0, errors = 0;
    for (const QueryResponse& r : res->responses) {
      hits += r.hits.size();
      errors += r.status.ok() ? 0 : 1;
    }
    std::printf("%-4s %zu queries -> %zu hits, %zu errors\n",
                ServedIndexName(which), batch.size(), hits, errors);
    std::printf("     batch metrics %s\n", res->metrics.ToString().c_str());
    for (size_t w = 0; w < res->per_worker.size(); ++w) {
      std::printf("     worker %zu     %s\n", w,
                  res->per_worker[w].ToString().c_str());
    }
  }

  // 4b. Optionally re-serve the batch through the overload-protected
  // path: every query passes the bounded admission queue, runs under a
  // deadline token, and the scoreboard shows admitted / shed / timeout
  // counts the way an operator would read them off /metrics.
  if (admitted) {
    std::printf("\n--- admitted path (policy=%s, deadline=%llums) ---\n",
                AdmissionPolicyName(policy),
                static_cast<unsigned long long>(deadline_ms));
    for (ServedIndex which : kAllServedIndexes) {
      auto res = (*svc)->ExecuteBatchAdmitted(which, batch);
      if (!res.ok()) {
        std::fprintf(stderr, "admitted batch failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
      size_t ok = 0, shed = 0, timeout = 0, cancelled = 0;
      for (const QueryResponse& r : res->responses) {
        ok += r.status.ok() || r.status.IsNotFound();
        shed += r.status.IsUnavailable();
        timeout += r.status.IsDeadlineExceeded();
        cancelled += r.status.IsCancelled();
      }
      std::printf("%-4s %zu queries -> %zu ok, %zu shed, %zu timeout, "
                  "%zu cancelled\n",
                  ServedIndexName(which), batch.size(), ok, shed, timeout,
                  cancelled);
    }
    const AdmissionStats as = (*svc)->admission_stats();
    std::printf("admission scoreboard: admitted=%llu executed=%llu "
                "timeouts=%llu shed_total=%llu max_depth=%llu\n",
                static_cast<unsigned long long>(as.admitted),
                static_cast<unsigned long long>(as.executed),
                static_cast<unsigned long long>(as.timeouts),
                static_cast<unsigned long long>(as.shed_total),
                static_cast<unsigned long long>(as.max_depth));
  }

  // 5. Optionally persist the service as a single-file snapshot for
  // instant restarts (write-to-temp + rename, so it is crash-safe).
  if (!snapshot_out.empty()) {
    const Status st = (*svc)->WriteSnapshot(snapshot_out);
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("snapshot written to %s (reopen with --snapshot-in)\n",
                snapshot_out.c_str());
  }

  // 6. Stats snapshot, as a Prometheus scrape endpoint would serve it.
  std::printf("\n--- /metrics (Prometheus text format) ---\n%s",
              (*svc)->stats().RenderPrometheus().c_str());

  // 7. Debug introspection dump, as a /debug/introspect endpoint would
  // serve it: per structure x kind descent profiles, structure x-ray, and
  // the hottest pages of each pool.
  if (introspect) {
    std::printf("\n--- /debug/introspect ---\n");
    for (ServedIndex which : kAllServedIndexes) {
      for (QueryType type : kAllQueryTypes) {
        const introspect::ProfileAccumulator::Summary s =
            (*svc)->profile_summary(which, type);
        if (s.queries == 0) continue;
        std::printf("profile %s/%s %s\n", ServedIndexName(which),
                    QueryTypeName(type), s.ToJson().c_str());
      }
      introspect::XRayReport xr;
      Status xst = Status::OK();
      switch (which) {
        case ServedIndex::kRStar:
          xst = introspect::XRayRStar((*svc)->rstar(), &xr);
          break;
        case ServedIndex::kRPlus:
          xst = introspect::XRayRPlus((*svc)->rplus(), &xr);
          break;
        case ServedIndex::kPmr:
          xst = introspect::XRayPmr((*svc)->pmr(), &xr);
          break;
      }
      if (!xst.ok()) {
        std::fprintf(stderr, "x-ray failed: %s\n", xst.ToString().c_str());
        return 1;
      }
      std::printf("xray %s %s\n", ServedIndexName(which),
                  xr.ToJson().c_str());
      std::printf("heat %s\n%s", ServedIndexName(which),
                  (*svc)->page_heat(which)->RankedReport(5).c_str());
    }
  }
  if (!trace_path.empty()) {
    (*svc)->tracer().Close();
    std::printf("--- trace: %llu JSONL lines written to %s ---\n",
                static_cast<unsigned long long>(
                    (*svc)->tracer().lines_emitted()),
                trace_path.c_str());
  }
  return 0;
}
