// Visualization: render a county map with the space decomposition each
// structure induces — the paper's Figures 2 (R-tree MBRs), 3 (R+-tree
// partitions), and 5 (PMR quadtree blocks), drawn from real data.
//
//   $ ./examples/visualize [county] [outdir]
//
// Produces <outdir>/<county>_{map,pmr,rplus,rstar}.svg.

#include <cstdio>
#include <string>

#include "lsdb/data/county_generator.h"
#include "lsdb/pmr/pmr_quadtree.h"
#include "lsdb/rplus/rplus_tree.h"
#include "lsdb/rtree/rstar_tree.h"
#include "lsdb/seg/segment_table.h"
#include "lsdb/viz/svg.h"

using namespace lsdb;  // NOLINT

int main(int argc, char** argv) {
  const std::string county = argc > 1 ? argv[1] : "demo";
  const std::string outdir = argc > 2 ? argv[2] : "/tmp";
  PolygonalMap map;
  if (county == "demo") {
    CountyProfile p;
    p.name = "demo";
    p.lattice = 16;
    p.meander_steps = 6;
    p.seed = 2;
    map = GenerateCounty(p, 14);
  } else {
    for (const CountyProfile& p : MarylandProfiles()) {
      if (p.name == county) map = GenerateCounty(p, 14);
    }
  }
  if (map.segments.empty()) {
    std::fprintf(stderr, "unknown county %s\n", county.c_str());
    return 1;
  }

  IndexOptions options;
  MemPageFile table_file(options.page_size);
  BufferPool table_pool(&table_file, options.buffer_frames, nullptr);
  SegmentTable table(&table_pool, nullptr);
  MemPageFile pmr_file(options.page_size), rplus_file(options.page_size),
      rstar_file(options.page_size);
  PmrQuadtree pmr(options, &pmr_file, &table);
  RPlusTree rplus(options, &rplus_file, &table);
  RStarTree rstar(options, &rstar_file, &table);
  if (!pmr.Init().ok() || !rplus.Init().ok() || !rstar.Init().ok()) return 1;
  for (const Segment& s : map.segments) {
    auto id = table.Append(s);
    if (!id.ok() || !pmr.Insert(*id, s).ok() ||
        !rplus.Insert(*id, s).ok() || !rstar.Insert(*id, s).ok()) {
      return 1;
    }
  }

  auto write = [&](const std::string& suffix,
                   const std::vector<Rect>& regions) {
    const std::string path = outdir + "/" + county + "_" + suffix + ".svg";
    const Status st = WriteSvg(map, regions, path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   st.ToString().c_str());
      return false;
    }
    std::printf("wrote %s (%zu overlay rects)\n", path.c_str(),
                regions.size());
    return true;
  };

  if (!write("map", {})) return 1;

  std::vector<QuadBlock> blocks;
  if (!pmr.CollectLeafBlocks(&blocks).ok()) return 1;
  std::vector<Rect> pmr_regions;
  pmr_regions.reserve(blocks.size());
  for (const QuadBlock& b : blocks) {
    pmr_regions.push_back(pmr.geometry().BlockRegion(b));
  }
  if (!write("pmr", pmr_regions)) return 1;

  std::vector<Rect> rplus_regions;
  if (!rplus.CollectLeafRegions(&rplus_regions).ok()) return 1;
  if (!write("rplus", rplus_regions)) return 1;

  std::vector<Rect> rstar_regions;
  if (!rstar.CollectLeafMbrs(&rstar_regions).ok()) return 1;
  if (!write("rstar", rstar_regions)) return 1;

  return 0;
}
