// lsdb_tool: command-line front end for the library.
//
//   lsdb_tool generate <county|demo> <out.rt1>   write a synthetic county
//                                                as TIGER/Line RT1 records
//   lsdb_tool stats <file.rt1>                   map statistics
//   lsdb_tool build <file.rt1> [index]           build + build statistics
//   lsdb_tool window <file.rt1> x0 y0 x1 y1 [index]
//   lsdb_tool nearest <file.rt1> x y [index]
//   lsdb_tool polygon <file.rt1> x y [index]
//   lsdb_tool compare <file.rt1>                 all structures side by side
//
// `index` is one of: pmr (default), rstar, rplus, grid. Coordinates are on
// the 16K x 16K normalized grid.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "lsdb/data/county_generator.h"
#include "lsdb/data/tiger.h"
#include "lsdb/grid/uniform_grid.h"
#include "lsdb/pmr/pmr_quadtree.h"
#include "lsdb/query/polygon.h"
#include "lsdb/rplus/rplus_tree.h"
#include "lsdb/rtree/rstar_tree.h"
#include "lsdb/seg/segment_table.h"

using namespace lsdb;  // NOLINT

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  lsdb_tool generate <county|demo> <out.rt1>\n"
      "  lsdb_tool stats <file.rt1>\n"
      "  lsdb_tool build <file.rt1> [pmr|rstar|rplus|grid]\n"
      "  lsdb_tool window <file.rt1> x0 y0 x1 y1 [index]\n"
      "  lsdb_tool nearest <file.rt1> x y [index]\n"
      "  lsdb_tool polygon <file.rt1> x y [index]\n"
      "  lsdb_tool compare <file.rt1>\n"
      "counties: AnneArundel Baltimore Cecil Charles Garrett Washington\n");
  return 2;
}

struct LoadedMap {
  PolygonalMap map;
  std::unique_ptr<MemPageFile> seg_file;
  std::unique_ptr<BufferPool> seg_pool;
  std::unique_ptr<SegmentTable> table;
  std::unique_ptr<MemPageFile> index_file;
  std::unique_ptr<SpatialIndex> index;
};

bool LoadMap(const std::string& path, LoadedMap* out) {
  auto rd = ReadTigerRT1(path);
  if (!rd.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", path.c_str(),
                 rd.status().ToString().c_str());
    return false;
  }
  out->map = rd->Normalize(14);
  out->map.SortSpatially();
  return true;
}

bool BuildIndex(LoadedMap* lm, const std::string& kind) {
  IndexOptions options;
  lm->seg_file = std::make_unique<MemPageFile>(options.page_size);
  lm->seg_pool = std::make_unique<BufferPool>(lm->seg_file.get(),
                                              options.buffer_frames, nullptr);
  lm->table = std::make_unique<SegmentTable>(lm->seg_pool.get(), nullptr);
  lm->index_file = std::make_unique<MemPageFile>(options.page_size);
  if (kind == "pmr") {
    auto t = std::make_unique<PmrQuadtree>(options, lm->index_file.get(),
                                           lm->table.get());
    if (!t->Init().ok()) return false;
    lm->index = std::move(t);
  } else if (kind == "rstar") {
    auto t = std::make_unique<RStarTree>(options, lm->index_file.get(),
                                         lm->table.get());
    if (!t->Init().ok()) return false;
    lm->index = std::move(t);
  } else if (kind == "rplus") {
    auto t = std::make_unique<RPlusTree>(options, lm->index_file.get(),
                                         lm->table.get());
    if (!t->Init().ok()) return false;
    lm->index = std::move(t);
  } else if (kind == "grid") {
    auto t = std::make_unique<UniformGrid>(options, lm->index_file.get(),
                                           lm->table.get());
    if (!t->Init().ok()) return false;
    lm->index = std::move(t);
  } else {
    std::fprintf(stderr, "unknown index kind %s\n", kind.c_str());
    return false;
  }
  for (const Segment& s : lm->map.segments) {
    auto id = lm->table->Append(s);
    if (!id.ok() || !lm->index->Insert(*id, s).ok()) {
      std::fprintf(stderr, "insert failed\n");
      return false;
    }
  }
  return true;
}

void PrintCosts(const SpatialIndex& index, const MetricCounters& before) {
  const MetricCounters d = index.metrics() - before;
  std::printf("cost: %llu disk accesses, %llu segment comps, %llu bbox "
              "comps, %llu bucket comps\n",
              static_cast<unsigned long long>(d.disk_accesses()),
              static_cast<unsigned long long>(d.segment_comps),
              static_cast<unsigned long long>(d.bbox_comps),
              static_cast<unsigned long long>(d.bucket_comps));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string cmd = argv[1];

  if (cmd == "generate") {
    if (argc < 4) return Usage();
    const std::string which = argv[2];
    PolygonalMap map;
    if (which == "demo") {
      CountyProfile p;
      p.name = "demo";
      p.lattice = 24;
      p.meander_steps = 6;
      p.seed = 1;
      map = GenerateCounty(p, 14);
    } else {
      for (const CountyProfile& p : MarylandProfiles()) {
        if (p.name == which) map = GenerateCounty(p, 14);
      }
    }
    if (map.segments.empty()) {
      std::fprintf(stderr, "unknown county %s\n", which.c_str());
      return 1;
    }
    const Status st = WriteTigerRT1(map, argv[3]);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu segments to %s\n", map.segments.size(), argv[3]);
    return 0;
  }

  LoadedMap lm;
  if (!LoadMap(argv[2], &lm)) return 1;

  if (cmd == "stats") {
    const MapStatistics st = lm.map.Statistics();
    std::printf("segments:        %zu\n", st.segment_count);
    std::printf("vertices:        %zu\n", st.vertex_count);
    std::printf("avg seg length:  %.1f px\n", st.avg_segment_length);
    std::printf("avg vertex deg:  %.2f\n", st.avg_vertex_degree);
    std::printf("bounds:          %s\n", st.bounds.ToString().c_str());
    return 0;
  }

  if (cmd == "compare") {
    std::printf("%-6s %10s %10s %7s\n", "index", "size KB", "build da",
                "height");
    for (const char* kind : {"rstar", "rplus", "pmr", "grid"}) {
      LoadedMap one;
      one.map = lm.map;
      if (!BuildIndex(&one, kind)) return 1;
      std::printf("%-6s %10.0f %10llu\n", kind,
                  static_cast<double>(one.index->bytes()) / 1024.0,
                  static_cast<unsigned long long>(
                      one.index->metrics().disk_accesses()));
    }
    return 0;
  }

  const bool needs_point = cmd == "nearest" || cmd == "polygon";
  const bool needs_window = cmd == "window";
  const int coord_args = needs_point ? 2 : needs_window ? 4 : 0;
  if (cmd != "build" && !needs_point && !needs_window) return Usage();
  if (argc < 3 + coord_args) return Usage();
  const std::string kind =
      argc > 3 + coord_args ? argv[3 + coord_args] : "pmr";

  if (!BuildIndex(&lm, kind)) return 1;
  std::printf("built %s over %zu segments: %llu KB, %llu build disk "
              "accesses\n",
              kind.c_str(), lm.map.segments.size(),
              static_cast<unsigned long long>(lm.index->bytes() / 1024),
              static_cast<unsigned long long>(
                  lm.index->metrics().disk_accesses()));
  if (cmd == "build") return 0;

  const MetricCounters before = lm.index->metrics();
  if (cmd == "window") {
    const Rect w = Rect::Of(std::atoi(argv[3]), std::atoi(argv[4]),
                            std::atoi(argv[5]), std::atoi(argv[6]));
    std::vector<SegmentHit> hits;
    if (!lm.index->WindowQueryEx(w, &hits).ok()) return 1;
    std::printf("%zu segments intersect %s\n", hits.size(),
                w.ToString().c_str());
    for (size_t i = 0; i < hits.size() && i < 10; ++i) {
      std::printf("  %u %s\n", hits[i].id, hits[i].seg.ToString().c_str());
    }
    if (hits.size() > 10) std::printf("  ... (%zu more)\n", hits.size() - 10);
  } else if (cmd == "nearest") {
    const Point p{std::atoi(argv[3]), std::atoi(argv[4])};
    auto nn = lm.index->Nearest(p);
    if (!nn.ok()) {
      std::fprintf(stderr, "%s\n", nn.status().ToString().c_str());
      return 1;
    }
    std::printf("nearest to (%d,%d): segment %u %s, distance %.2f px\n",
                p.x, p.y, nn->id, nn->seg.ToString().c_str(),
                std::sqrt(nn->squared_distance));
  } else if (cmd == "polygon") {
    const Point p{std::atoi(argv[3]), std::atoi(argv[4])};
    PolygonResult res;
    if (!EnclosingPolygon(lm.index.get(), p, &res).ok()) return 1;
    std::printf("enclosing polygon of (%d,%d): %zu distinct segments "
                "(%s walk, %zu steps)\n",
                p.x, p.y, res.distinct_count,
                res.closed ? "closed" : "aborted", res.segments.size());
  }
  PrintCosts(*lm.index, before);
  return 0;
}
