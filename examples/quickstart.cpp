// Quickstart: build a spatial index over a line segment database and run
// the basic queries.
//
//   $ ./examples/quickstart
//
// The library indexes *segment ids*; segment geometry lives in a shared
// disk-resident SegmentTable. Every index (R*-tree, R+-tree, PMR quadtree,
// uniform grid) implements the same SpatialIndex interface.

#include <cmath>
#include <cstdio>

#include "lsdb/data/county_generator.h"
#include "lsdb/pmr/pmr_quadtree.h"
#include "lsdb/seg/segment_table.h"

using namespace lsdb;  // NOLINT

int main() {
  // 1. Generate a small road network (a synthetic TIGER-like county map)
  //    on the 16K x 16K world grid used throughout the library.
  CountyProfile profile;
  profile.name = "quickstart";
  profile.lattice = 24;
  profile.meander_steps = 6;
  profile.seed = 7;
  const PolygonalMap map = GenerateCounty(profile, /*world_log2=*/14);
  std::printf("generated %zu road segments\n", map.segments.size());

  // 2. Storage: a page file + LRU buffer pool per component. 1K pages and
  //    16 buffer frames are the defaults from the SIGMOD'92 study.
  IndexOptions options;
  MemPageFile table_file(options.page_size);
  BufferPool table_pool(&table_file, options.buffer_frames, nullptr);
  SegmentTable table(&table_pool, nullptr);

  // 3. Load the segment table and build a PMR quadtree over it.
  MemPageFile index_file(options.page_size);
  PmrQuadtree index(options, &index_file, &table);
  if (!index.Init().ok()) return 1;
  for (const Segment& s : map.segments) {
    auto id = table.Append(s);
    if (!id.ok() || !index.Insert(*id, s).ok()) return 1;
  }
  std::printf("index built: %llu KB, %llu q-edge tuples\n",
              static_cast<unsigned long long>(index.bytes() / 1024),
              static_cast<unsigned long long>(index.tuples()));

  // 4. Window query: all segments intersecting a rectangle.
  const Rect window = Rect::Of(8000, 8000, 8400, 8400);
  std::vector<SegmentHit> hits;
  if (!index.WindowQueryEx(window, &hits).ok()) return 1;
  std::printf("window %s contains %zu segments\n",
              window.ToString().c_str(), hits.size());
  for (size_t i = 0; i < hits.size() && i < 3; ++i) {
    std::printf("  segment %u: %s\n", hits[i].id,
                hits[i].seg.ToString().c_str());
  }

  // 5. Nearest segment to a point (Euclidean).
  const Point p{5000, 12000};
  auto nearest = index.Nearest(p);
  if (!nearest.ok()) return 1;
  std::printf("nearest segment to (%d,%d): id %u at distance %.1f\n", p.x,
              p.y, nearest->id,
              std::sqrt(nearest->squared_distance));

  // 6. Every operation was counted in the paper's three metrics.
  std::printf("metrics so far: %s\n", index.metrics().ToString().c_str());
  return 0;
}
