// Road network scenario: the queries a road database user actually asks
// (Section 5 of the SIGMOD'92 study), demonstrated on an R+-tree:
//
//  1. which roads meet at this intersection?          (Point query 1)
//  2. which roads meet at the other end of this road? (Point query 2)
//  3. which road is closest to my house?              (Nearest line)
//  4. which block (polygon) is my house in?           (Enclosing polygon)
//  5. which roads pass through this neighbourhood?    (Window query)
//
//   $ ./examples/road_network

#include <cmath>
#include <cstdio>

#include "lsdb/data/county_generator.h"
#include "lsdb/query/incident.h"
#include "lsdb/query/polygon.h"
#include "lsdb/rplus/rplus_tree.h"
#include "lsdb/seg/segment_table.h"

using namespace lsdb;  // NOLINT

int main() {
  // A suburban road network.
  CountyProfile profile;
  profile.name = "suburbia";
  profile.lattice = 20;
  profile.meander_steps = 4;
  profile.delete_prob = 0.08;
  profile.spur_prob = 0.5;  // cul-de-sacs
  profile.seed = 99;
  const PolygonalMap map = GenerateCounty(profile, 14);
  std::printf("road network: %zu segments\n", map.segments.size());

  IndexOptions options;
  MemPageFile table_file(options.page_size);
  BufferPool table_pool(&table_file, options.buffer_frames, nullptr);
  SegmentTable table(&table_pool, nullptr);
  MemPageFile index_file(options.page_size);
  RPlusTree roads(options, &index_file, &table);
  if (!roads.Init().ok()) return 1;
  for (const Segment& s : map.segments) {
    auto id = table.Append(s);
    if (!id.ok() || !roads.Insert(*id, s).ok()) return 1;
  }

  // 3. Nearest road to the "house".
  const Point house{9000, 9000};
  auto nearest = roads.Nearest(house);
  if (!nearest.ok()) return 1;
  std::printf("\nnearest road to house (%d,%d): segment %u %s (%.1f px "
              "away)\n",
              house.x, house.y, nearest->id,
              nearest->seg.ToString().c_str(),
              std::sqrt(nearest->squared_distance));

  // 1. Roads incident at one of its intersections.
  const Point intersection = nearest->seg.a;
  std::vector<SegmentHit> incident;
  if (!IncidentSegments(&roads, intersection, &incident).ok()) return 1;
  std::printf("roads meeting at (%d,%d): %zu\n", intersection.x,
              intersection.y, incident.size());

  // 2. Roads at the other end of the nearest road.
  std::vector<SegmentHit> other_end;
  if (!IncidentAtOtherEndpoint(&roads, nearest->seg, intersection,
                               &other_end)
           .ok()) {
    return 1;
  }
  std::printf("roads at the other end: %zu\n", other_end.size());

  // 4. The city block (enclosing polygon) containing the house.
  PolygonResult block;
  if (!EnclosingPolygon(&roads, house, &block).ok()) return 1;
  std::printf("the house's block has %zu boundary segments (%s walk of "
              "%zu steps)\n",
              block.distinct_count, block.closed ? "closed" : "aborted",
              block.segments.size());

  // 5. All roads in the neighbourhood window.
  const Rect neighbourhood =
      Rect::Of(house.x - 500, house.y - 500, house.x + 500, house.y + 500);
  std::vector<SegmentHit> in_window;
  if (!roads.WindowQueryEx(neighbourhood, &in_window).ok()) return 1;
  std::printf("roads within 500px of the house: %zu\n", in_window.size());

  std::printf("\nquery cost counters: %s\n",
              roads.metrics().ToString().c_str());
  return 0;
}
