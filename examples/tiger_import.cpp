// TIGER/Line import: write a county map in the Census Bureau's 1990
// Record Type 1 fixed-width format, read it back (the same parser accepts
// real TIGER/Line RT1 files), normalize it onto the 16K x 16K grid of the
// study, and build an index over it.
//
//   $ ./examples/tiger_import [path/to/file.rt1]
//
// Without an argument a synthetic county is exported to /tmp and then
// imported, demonstrating the full round trip.

#include <cstdio>

#include "lsdb/data/county_generator.h"
#include "lsdb/data/tiger.h"
#include "lsdb/rtree/rstar_tree.h"
#include "lsdb/seg/segment_table.h"

using namespace lsdb;  // NOLINT

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // Export a synthetic county as RT1 records first.
    CountyProfile profile;
    profile.name = "export-demo";
    profile.lattice = 16;
    profile.meander_steps = 4;
    profile.seed = 3;
    const PolygonalMap map = GenerateCounty(profile, 14);
    path = "/tmp/lsdb_demo.rt1";
    const Status st = WriteTigerRT1(map, path);
    if (!st.ok()) {
      std::fprintf(stderr, "export failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("exported %zu segments to %s (228-column RT1 records)\n",
                map.segments.size(), path.c_str());
  }

  auto imported = ReadTigerRT1(path);
  if (!imported.ok()) {
    std::fprintf(stderr, "import failed: %s\n",
                 imported.status().ToString().c_str());
    return 1;
  }
  std::printf("imported %zu RT1 chains from %s\n",
              imported->segments.size(), path.c_str());

  // Real TIGER data arrives in microdegrees; normalize onto the study's
  // 16K x 16K grid ("a minimum bounding square was computed for each map").
  PolygonalMap map = imported->Normalize(14);
  const MapStatistics stats = map.Statistics();
  std::printf("normalized: %zu segments, %zu vertices, avg length %.1f px, "
              "avg degree %.2f\n",
              stats.segment_count, stats.vertex_count,
              stats.avg_segment_length, stats.avg_vertex_degree);

  // Build an R*-tree over the imported map.
  IndexOptions options;
  MemPageFile table_file(options.page_size);
  BufferPool table_pool(&table_file, options.buffer_frames, nullptr);
  SegmentTable table(&table_pool, nullptr);
  MemPageFile index_file(options.page_size);
  RStarTree index(options, &index_file, &table);
  if (!index.Init().ok()) return 1;
  for (const Segment& s : map.segments) {
    auto id = table.Append(s);
    if (!id.ok() || !index.Insert(*id, s).ok()) return 1;
  }
  std::printf("R*-tree built: %llu KB, height %u, %llu build disk "
              "accesses\n",
              static_cast<unsigned long long>(index.bytes() / 1024),
              index.height(),
              static_cast<unsigned long long>(
                  index.metrics().disk_accesses()));
  return 0;
}
