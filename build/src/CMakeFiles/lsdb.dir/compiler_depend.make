# Empty compiler generated dependencies file for lsdb.
# This may be replaced when dependencies are built.
