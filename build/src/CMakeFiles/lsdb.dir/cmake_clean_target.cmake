file(REMOVE_RECURSE
  "liblsdb.a"
)
