
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsdb/btree/btree.cc" "src/CMakeFiles/lsdb.dir/lsdb/btree/btree.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/btree/btree.cc.o.d"
  "/root/repo/src/lsdb/data/county_generator.cc" "src/CMakeFiles/lsdb.dir/lsdb/data/county_generator.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/data/county_generator.cc.o.d"
  "/root/repo/src/lsdb/data/polygonal_map.cc" "src/CMakeFiles/lsdb.dir/lsdb/data/polygonal_map.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/data/polygonal_map.cc.o.d"
  "/root/repo/src/lsdb/data/tiger.cc" "src/CMakeFiles/lsdb.dir/lsdb/data/tiger.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/data/tiger.cc.o.d"
  "/root/repo/src/lsdb/geom/clip.cc" "src/CMakeFiles/lsdb.dir/lsdb/geom/clip.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/geom/clip.cc.o.d"
  "/root/repo/src/lsdb/geom/morton.cc" "src/CMakeFiles/lsdb.dir/lsdb/geom/morton.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/geom/morton.cc.o.d"
  "/root/repo/src/lsdb/geom/rect.cc" "src/CMakeFiles/lsdb.dir/lsdb/geom/rect.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/geom/rect.cc.o.d"
  "/root/repo/src/lsdb/geom/segment.cc" "src/CMakeFiles/lsdb.dir/lsdb/geom/segment.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/geom/segment.cc.o.d"
  "/root/repo/src/lsdb/grid/uniform_grid.cc" "src/CMakeFiles/lsdb.dir/lsdb/grid/uniform_grid.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/grid/uniform_grid.cc.o.d"
  "/root/repo/src/lsdb/harness/experiment.cc" "src/CMakeFiles/lsdb.dir/lsdb/harness/experiment.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/harness/experiment.cc.o.d"
  "/root/repo/src/lsdb/index/spatial_index.cc" "src/CMakeFiles/lsdb.dir/lsdb/index/spatial_index.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/index/spatial_index.cc.o.d"
  "/root/repo/src/lsdb/pmr/pmr_quadtree.cc" "src/CMakeFiles/lsdb.dir/lsdb/pmr/pmr_quadtree.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/pmr/pmr_quadtree.cc.o.d"
  "/root/repo/src/lsdb/pmr/window_decompose.cc" "src/CMakeFiles/lsdb.dir/lsdb/pmr/window_decompose.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/pmr/window_decompose.cc.o.d"
  "/root/repo/src/lsdb/query/incident.cc" "src/CMakeFiles/lsdb.dir/lsdb/query/incident.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/query/incident.cc.o.d"
  "/root/repo/src/lsdb/query/intersect.cc" "src/CMakeFiles/lsdb.dir/lsdb/query/intersect.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/query/intersect.cc.o.d"
  "/root/repo/src/lsdb/query/join.cc" "src/CMakeFiles/lsdb.dir/lsdb/query/join.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/query/join.cc.o.d"
  "/root/repo/src/lsdb/query/point_gen.cc" "src/CMakeFiles/lsdb.dir/lsdb/query/point_gen.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/query/point_gen.cc.o.d"
  "/root/repo/src/lsdb/query/polygon.cc" "src/CMakeFiles/lsdb.dir/lsdb/query/polygon.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/query/polygon.cc.o.d"
  "/root/repo/src/lsdb/rplus/rplus_tree.cc" "src/CMakeFiles/lsdb.dir/lsdb/rplus/rplus_tree.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/rplus/rplus_tree.cc.o.d"
  "/root/repo/src/lsdb/rtree/rnode.cc" "src/CMakeFiles/lsdb.dir/lsdb/rtree/rnode.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/rtree/rnode.cc.o.d"
  "/root/repo/src/lsdb/rtree/rstar_tree.cc" "src/CMakeFiles/lsdb.dir/lsdb/rtree/rstar_tree.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/rtree/rstar_tree.cc.o.d"
  "/root/repo/src/lsdb/seg/segment_table.cc" "src/CMakeFiles/lsdb.dir/lsdb/seg/segment_table.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/seg/segment_table.cc.o.d"
  "/root/repo/src/lsdb/storage/buffer_pool.cc" "src/CMakeFiles/lsdb.dir/lsdb/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/storage/buffer_pool.cc.o.d"
  "/root/repo/src/lsdb/storage/page_file.cc" "src/CMakeFiles/lsdb.dir/lsdb/storage/page_file.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/storage/page_file.cc.o.d"
  "/root/repo/src/lsdb/storage/superblock.cc" "src/CMakeFiles/lsdb.dir/lsdb/storage/superblock.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/storage/superblock.cc.o.d"
  "/root/repo/src/lsdb/util/counters.cc" "src/CMakeFiles/lsdb.dir/lsdb/util/counters.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/util/counters.cc.o.d"
  "/root/repo/src/lsdb/util/random.cc" "src/CMakeFiles/lsdb.dir/lsdb/util/random.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/util/random.cc.o.d"
  "/root/repo/src/lsdb/util/status.cc" "src/CMakeFiles/lsdb.dir/lsdb/util/status.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/util/status.cc.o.d"
  "/root/repo/src/lsdb/viz/svg.cc" "src/CMakeFiles/lsdb.dir/lsdb/viz/svg.cc.o" "gcc" "src/CMakeFiles/lsdb.dir/lsdb/viz/svg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
