file(REMOVE_RECURSE
  "CMakeFiles/tiger_import.dir/tiger_import.cpp.o"
  "CMakeFiles/tiger_import.dir/tiger_import.cpp.o.d"
  "tiger_import"
  "tiger_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiger_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
