# Empty compiler generated dependencies file for tiger_import.
# This may be replaced when dependencies are built.
