file(REMOVE_RECURSE
  "CMakeFiles/on_disk.dir/on_disk.cpp.o"
  "CMakeFiles/on_disk.dir/on_disk.cpp.o.d"
  "on_disk"
  "on_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/on_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
