# Empty dependencies file for on_disk.
# This may be replaced when dependencies are built.
