file(REMOVE_RECURSE
  "CMakeFiles/lsdb_tool.dir/lsdb_tool.cpp.o"
  "CMakeFiles/lsdb_tool.dir/lsdb_tool.cpp.o.d"
  "lsdb_tool"
  "lsdb_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsdb_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
