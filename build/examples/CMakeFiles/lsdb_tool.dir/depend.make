# Empty dependencies file for lsdb_tool.
# This may be replaced when dependencies are built.
