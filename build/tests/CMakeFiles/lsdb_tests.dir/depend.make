# Empty dependencies file for lsdb_tests.
# This may be replaced when dependencies are built.
