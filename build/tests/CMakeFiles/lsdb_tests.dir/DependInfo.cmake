
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/lsdb_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/lsdb_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/equivalence_test.cc" "tests/CMakeFiles/lsdb_tests.dir/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/equivalence_test.cc.o.d"
  "/root/repo/tests/experiment_test.cc" "tests/CMakeFiles/lsdb_tests.dir/experiment_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/experiment_test.cc.o.d"
  "/root/repo/tests/geom_test.cc" "tests/CMakeFiles/lsdb_tests.dir/geom_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/geom_test.cc.o.d"
  "/root/repo/tests/grid_test.cc" "tests/CMakeFiles/lsdb_tests.dir/grid_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/grid_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/lsdb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/join_test.cc" "tests/CMakeFiles/lsdb_tests.dir/join_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/join_test.cc.o.d"
  "/root/repo/tests/misc_test.cc" "tests/CMakeFiles/lsdb_tests.dir/misc_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/misc_test.cc.o.d"
  "/root/repo/tests/persistence_test.cc" "tests/CMakeFiles/lsdb_tests.dir/persistence_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/persistence_test.cc.o.d"
  "/root/repo/tests/pmr_test.cc" "tests/CMakeFiles/lsdb_tests.dir/pmr_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/pmr_test.cc.o.d"
  "/root/repo/tests/polygon_property_test.cc" "tests/CMakeFiles/lsdb_tests.dir/polygon_property_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/polygon_property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/lsdb_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/rplus_test.cc" "tests/CMakeFiles/lsdb_tests.dir/rplus_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/rplus_test.cc.o.d"
  "/root/repo/tests/rstar_test.cc" "tests/CMakeFiles/lsdb_tests.dir/rstar_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/rstar_test.cc.o.d"
  "/root/repo/tests/segment_table_test.cc" "tests/CMakeFiles/lsdb_tests.dir/segment_table_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/segment_table_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/lsdb_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/lsdb_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/viz_test.cc" "tests/CMakeFiles/lsdb_tests.dir/viz_test.cc.o" "gcc" "tests/CMakeFiles/lsdb_tests.dir/viz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lsdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
