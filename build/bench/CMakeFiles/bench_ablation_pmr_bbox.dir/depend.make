# Empty dependencies file for bench_ablation_pmr_bbox.
# This may be replaced when dependencies are built.
