file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pmr_bbox.dir/bench_ablation_pmr_bbox.cc.o"
  "CMakeFiles/bench_ablation_pmr_bbox.dir/bench_ablation_pmr_bbox.cc.o.d"
  "bench_ablation_pmr_bbox"
  "bench_ablation_pmr_bbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pmr_bbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
