file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rplus.dir/bench_ablation_rplus.cc.o"
  "CMakeFiles/bench_ablation_rplus.dir/bench_ablation_rplus.cc.o.d"
  "bench_ablation_rplus"
  "bench_ablation_rplus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
