# Empty compiler generated dependencies file for bench_ablation_rplus.
# This may be replaced when dependencies are built.
